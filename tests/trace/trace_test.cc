// Trace format round-trip and error-path coverage: the writer/reader pair
// must preserve every batch bit-for-bit, produce byte-identical output on
// write -> read -> write, and reject malformed or truncated files with a
// line-numbered error instead of silently replaying garbage.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "src/trace/trace.h"
#include "tests/test_util.h"

namespace cknn {
namespace {

using testing::ReadFileToString;

void WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

/// A small trace exercising every record kind: appear / move / disappear
/// objects, install / move / terminate queries, weight updates, fluctuated
/// initial weights, meta values with spaces, and an empty batch.
Trace MakeSampleTrace() {
  Trace trace;
  trace.network = testing::MakeGrid(3);
  EXPECT_TRUE(trace.network.SetWeight(1, 2.53125).ok());
  trace.meta.push_back(TraceMeta{"generator", "hand-written sample"});
  trace.meta.push_back(TraceMeta{"seed", "7"});

  UpdateBatch initial;
  initial.objects.push_back(
      ObjectUpdate{0, std::nullopt, NetworkPoint{0, 0.125}});
  initial.objects.push_back(
      ObjectUpdate{1, std::nullopt, NetworkPoint{3, 1.0 / 3.0}});
  initial.queries.push_back(QueryUpdate{0, QueryUpdate::Kind::kInstall,
                                        NetworkPoint{2, 0.75}, 2});
  trace.batches.push_back(initial);

  UpdateBatch step;
  step.objects.push_back(
      ObjectUpdate{0, NetworkPoint{0, 0.125}, NetworkPoint{1, 0.5}});
  step.objects.push_back(
      ObjectUpdate{1, NetworkPoint{3, 1.0 / 3.0}, std::nullopt});
  step.queries.push_back(
      QueryUpdate{0, QueryUpdate::Kind::kMove, NetworkPoint{2, 0.25}, 0});
  step.queries.push_back(QueryUpdate{1, QueryUpdate::Kind::kInstall,
                                     NetworkPoint{0, 0.0}, 1});
  step.edges.push_back(EdgeUpdate{4, 1.875});
  trace.batches.push_back(step);

  UpdateBatch last;
  last.queries.push_back(
      QueryUpdate{1, QueryUpdate::Kind::kTerminate, NetworkPoint{}, 0});
  trace.batches.push_back(last);
  trace.batches.push_back(UpdateBatch{});  // Quiescent tick.
  return trace;
}

TEST(TraceFormatTest, RoundTripPreservesEverything) {
  const std::string path = "trace_test_roundtrip.trace";
  const Trace original = MakeSampleTrace();
  ASSERT_TRUE(WriteTrace(original, path).ok());

  Result<Trace> read = ReadTrace(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->version, kTraceFormatVersion);
  ASSERT_EQ(read->meta.size(), original.meta.size());
  for (std::size_t i = 0; i < original.meta.size(); ++i) {
    EXPECT_EQ(read->meta[i].key, original.meta[i].key);
    EXPECT_EQ(read->meta[i].value, original.meta[i].value);
  }
  ASSERT_EQ(read->network.NumNodes(), original.network.NumNodes());
  ASSERT_EQ(read->network.NumEdges(), original.network.NumEdges());
  for (NodeId n = 0; n < original.network.NumNodes(); ++n) {
    EXPECT_EQ(read->network.NodePosition(n), original.network.NodePosition(n));
  }
  for (EdgeId e = 0; e < original.network.NumEdges(); ++e) {
    const RoadNetwork::Edge& want = original.network.edge(e);
    const RoadNetwork::Edge& got = read->network.edge(e);
    EXPECT_EQ(got.u, want.u);
    EXPECT_EQ(got.v, want.v);
    EXPECT_EQ(got.length, want.length);  // Exact: precision-17 round-trip.
    EXPECT_EQ(got.weight, want.weight);
  }
  EXPECT_EQ(read->batches, original.batches);
  std::remove(path.c_str());
}

TEST(TraceFormatTest, WriteReadWriteIsByteIdentical) {
  const std::string path_a = "trace_test_bytes_a.trace";
  const std::string path_b = "trace_test_bytes_b.trace";
  ASSERT_TRUE(WriteTrace(MakeSampleTrace(), path_a).ok());
  Result<Trace> read = ReadTrace(path_a);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_TRUE(WriteTrace(*read, path_b).ok());
  EXPECT_EQ(ReadFileToString(path_a), ReadFileToString(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(TraceFormatTest, EmptyTraceRoundTrips) {
  const std::string path = "trace_test_empty.trace";
  Trace trace;
  trace.network = testing::MakeGrid(2);
  ASSERT_TRUE(WriteTrace(trace, path).ok());
  Result<Trace> read = ReadTrace(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->batches.empty());
  EXPECT_TRUE(read->meta.empty());
  std::remove(path.c_str());
}

TEST(TraceFormatTest, StreamingWriterCountsAndRejectsUseAfterFinish) {
  const std::string path = "trace_test_streaming.trace";
  const Trace sample = MakeSampleTrace();
  Result<TraceWriter> writer =
      TraceWriter::Open(path, sample.meta, sample.network);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (const UpdateBatch& batch : sample.batches) {
    ASSERT_TRUE(writer->AppendBatch(batch).ok());
  }
  EXPECT_EQ(writer->batches_written(), sample.batches.size());
  ASSERT_TRUE(writer->Finish().ok());
  EXPECT_TRUE(writer->Finish().IsFailedPrecondition());
  EXPECT_TRUE(writer->AppendBatch(UpdateBatch{}).IsFailedPrecondition());
  std::remove(path.c_str());
}

TEST(TraceFormatTest, MetaKeyWithWhitespaceRejectedWithoutClobbering) {
  const std::string path = "trace_test_badmeta.trace";
  Trace good;
  good.network = testing::MakeGrid(2);
  ASSERT_TRUE(WriteTrace(good, path).ok());
  const std::string before = ReadFileToString(path);

  Trace bad;
  bad.network = testing::MakeGrid(2);
  bad.meta.push_back(TraceMeta{"bad key", "value"});
  EXPECT_TRUE(WriteTrace(bad, path).IsInvalidArgument());
  // The rejected write must not have truncated the existing trace.
  EXPECT_EQ(ReadFileToString(path), before);
  std::remove(path.c_str());
}

TEST(TraceFormatTest, MissingFileIsIoError) {
  EXPECT_TRUE(ReadTrace("no_such_file.trace").status().IsIoError());
}

TEST(TraceFormatTest, CommentsAndBlankLinesAreSkipped) {
  const std::string path = "trace_test_comments.trace";
  WriteStringToFile(path,
                    "# hand-authored trace\n"
                    "CKNNTRACE 1\n"
                    "\n"
                    "meta note spaces are fine here\n"
                    "network 2 1\n"
                    "n 0 0\n"
                    "n 1 0\n"
                    "# the only edge\n"
                    "e 0 1 1 1\n"
                    "batch 1 1 0\n"
                    "o 3 - 0 0.5\n"
                    "q i 0 0 0.25 2\n"
                    "end\n"
                    "eot 1\n");
  Result<Trace> read = ReadTrace(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->meta.size(), 1u);
  EXPECT_EQ(read->meta[0].value, "spaces are fine here");
  ASSERT_EQ(read->batches.size(), 1u);
  ASSERT_EQ(read->batches[0].objects.size(), 1u);
  EXPECT_FALSE(read->batches[0].objects[0].old_pos.has_value());
  EXPECT_EQ(read->batches[0].objects[0].new_pos,
            std::optional<NetworkPoint>(NetworkPoint{0, 0.5}));
  std::remove(path.c_str());
}

/// Writes `content` as a trace file and expects the reader to reject it.
void ExpectReadFails(const std::string& name,
                     const std::string& content) {
  SCOPED_TRACE(name);
  const std::string path = "trace_test_" + name + ".trace";
  WriteStringToFile(path, content);
  const Result<Trace> read = ReadTrace(path);
  EXPECT_FALSE(read.ok());
  std::remove(path.c_str());
}

TEST(TraceFormatTest, MalformedInputsRejected) {
  const std::string header =
      "CKNNTRACE 1\nnetwork 2 1\nn 0 0\nn 1 0\ne 0 1 1 1\n";
  ExpectReadFails("bad_magic", "NOTATRACE 1\n");
  ExpectReadFails("future_version", "CKNNTRACE 99\nnetwork 0 0\neot 0\n");
  ExpectReadFails("missing_trailer", header);
  ExpectReadFails("trailer_count_mismatch", header + "eot 5\n");
  ExpectReadFails("truncated_batch",
                  header + "batch 2 0 0\no 0 - 0 0.5\neot 1\n");
  ExpectReadFails("missing_end_marker",
                  header + "batch 1 0 0\no 0 - 0 0.5\neot 1\n");
  ExpectReadFails("unknown_edge_in_position",
                  header + "batch 1 0 0\no 0 - 7 0.5\nend\neot 1\n");
  ExpectReadFails("position_param_out_of_range",
                  header + "batch 1 0 0\no 0 - 0 1.5\nend\neot 1\n");
  ExpectReadFails("negative_weight",
                  header + "batch 0 0 1\nw 0 -2\nend\neot 1\n");
  ExpectReadFails("unknown_query_op",
                  header + "batch 0 1 0\nq x 0 0 0.5\nend\neot 1\n");
  ExpectReadFails("install_without_k",
                  header + "batch 0 1 0\nq i 0 0 0.5\nend\neot 1\n");
  ExpectReadFails("trailing_garbage_record",
                  header + "batch 0 0 1\nw 0 2 surprise\nend\neot 1\n");
  ExpectReadFails("content_after_trailer", header + "eot 0\nbatch 0 0 0\n");
  ExpectReadFails("edge_self_loop", "CKNNTRACE 1\nnetwork 1 1\nn 0 0\n"
                                    "e 0 0 1 1\neot 0\n");
  // Absurd header counts must fail as truncation, not abort on reserve().
  ExpectReadFails("huge_batch_count",
                  header + "batch 18446744073709551615 0 0\nend\neot 1\n");
}

TEST(TraceFormatTest, CrlfLineEndingsAreTolerated) {
  const std::string path = "trace_test_crlf.trace";
  WriteStringToFile(path,
                    "CKNNTRACE 1\r\n"
                    "meta seed 7\r\n"
                    "network 2 1\r\n"
                    "n 0 0\r\n"
                    "n 1 0\r\n"
                    "e 0 1 1 1\r\n"
                    "batch 1 0 0\r\n"
                    "o 0 - 0 0.5\r\n"
                    "end\r\n"
                    "eot 1\r\n");
  Result<Trace> read = ReadTrace(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->meta.size(), 1u);
  EXPECT_EQ(read->meta[0].value, "7");  // No trailing '\r'.
  ASSERT_EQ(read->batches.size(), 1u);
  EXPECT_EQ(read->batches[0].objects.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cknn

// MemoryBytes() audit oracle: every footprint estimate of the expansion
// hot-path structures must stay within 2x of what the allocator actually
// hands out. The whole test binary replaces global operator new/delete
// with a malloc_usable_size-counting pair, so "actual" includes allocator
// rounding — the honest number the paper's Figure-18 memory experiment
// competes against. Structures dominated by sub-16-byte node allocations
// are deliberately excluded (their per-chunk overhead exceeds the payload;
// their estimates document payload bytes by design, see src/util/mem.h).

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#if defined(__GLIBC__) || defined(__linux__)
#include <malloc.h>
#define CKNN_HAVE_MALLOC_USABLE_SIZE 1
#endif

#include "gtest/gtest.h"
#include "src/core/expansion.h"
#include "src/core/top_k.h"
#include "src/util/bucket_queue.h"
#include "src/util/dense_id_map.h"
#include "src/util/indexed_min_heap.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

#if CKNN_HAVE_MALLOC_USABLE_SIZE

namespace {
// Constant-initialized: operator new runs before any dynamic initializer.
std::atomic<std::size_t> g_live_bytes{0};

void* TrackedAlloc(std::size_t n) {
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  g_live_bytes.fetch_add(malloc_usable_size(p), std::memory_order_relaxed);
  return p;
}

void TrackedFree(void* p) noexcept {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
  std::free(p);
}
}  // namespace

void* operator new(std::size_t n) { return TrackedAlloc(n); }
void* operator new[](std::size_t n) { return TrackedAlloc(n); }
void operator delete(void* p) noexcept { TrackedFree(p); }
void operator delete[](void* p) noexcept { TrackedFree(p); }
void operator delete(void* p, std::size_t) noexcept { TrackedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { TrackedFree(p); }

#endif  // CKNN_HAVE_MALLOC_USABLE_SIZE

namespace cknn {
namespace {

#if CKNN_HAVE_MALLOC_USABLE_SIZE

/// Builds a structure on the heap via `build` (returning a unique_ptr),
/// then checks its MemoryBytes() against the live-byte delta the build
/// actually caused: actual/2 <= estimate <= actual*2.
template <typename Build>
void ExpectEstimateWithinOracle(const char* what, Build&& build) {
  const std::size_t before = g_live_bytes.load(std::memory_order_relaxed);
  auto holder = build();
  const std::size_t after = g_live_bytes.load(std::memory_order_relaxed);
  ASSERT_GT(after, before) << what << ": build allocated nothing";
  const std::size_t actual = after - before;
  const std::size_t estimate = holder->MemoryBytes();
  EXPECT_GE(2 * estimate, actual)
      << what << ": estimate " << estimate << " is under half of actual "
      << actual;
  EXPECT_LE(estimate, 2 * actual)
      << what << ": estimate " << estimate << " is over twice actual "
      << actual;
}

TEST(MemOracleTest, DenseIdMap) {
  ExpectEstimateWithinOracle("DenseIdMap", [] {
    auto map = std::make_unique<DenseIdMap<double>>();
    for (std::uint64_t id = 0; id < 20000; ++id) {
      (*map)[id * 3] = static_cast<double>(id);
    }
    for (std::uint64_t id = 0; id < 200; ++id) {  // Overflow range.
      (*map)[(std::uint64_t{1} << 40) + id * 977] = static_cast<double>(id);
    }
    return map;
  });
}

TEST(MemOracleTest, IndexedMinHeap) {
  ExpectEstimateWithinOracle("IndexedMinHeap", [] {
    auto heap = std::make_unique<IndexedMinHeap>();
    Rng rng(7);
    for (std::uint64_t id = 0; id < 8000; ++id) {
      heap->Push(id, rng.NextDouble());
    }
    return heap;
  });
}

TEST(MemOracleTest, BucketQueue) {
  ExpectEstimateWithinOracle("BucketQueue", [] {
    auto q = std::make_unique<BucketQueue>(1.0);
    Rng rng(11);
    for (std::uint64_t id = 0; id < 8000; ++id) {
      q->Push(id, rng.Uniform(0.0, 500.0));
    }
    return q;
  });
}

TEST(MemOracleTest, CandidateSet) {
  ExpectEstimateWithinOracle("CandidateSet", [] {
    auto cand = std::make_unique<CandidateSet>();
    Rng rng(13);
    for (ObjectId id = 0; id < 8000; ++id) {
      cand->Offer(id, rng.NextDouble());
    }
    cand->KthDist(64);  // Materialize the top array too.
    return cand;
  });
}

TEST(MemOracleTest, ExpansionState) {
  ExpectEstimateWithinOracle("ExpansionState", [] {
    auto state = std::make_unique<ExpansionState>();
    state->ResetToPoint(NetworkPoint{0, 0.5});
    state->Settle(0, 0.0, kInvalidNode, kInvalidEdge);
    for (NodeId n = 1; n < 10000; ++n) {
      state->Settle(n, static_cast<double>(n), n - 1, 0);
    }
    return state;
  });
}

TEST(MemOracleTest, RoadNetworkWithCsr) {
  ExpectEstimateWithinOracle("RoadNetwork", [] {
    auto net = std::make_unique<RoadNetwork>(testing::MakeGrid(40));
    net->BuildAdjacencyIndex();
    return net;
  });
}

TEST(MemOracleTest, TilePartition) {
  // The partition is shared across views; the build lambda measures one
  // copy of the assignment/locator/slot arrays.
  const RoadNetwork net = testing::MakeGrid(60);
  net.topology()->BuildAdjacencyIndex();
  ExpectEstimateWithinOracle("TilePartition", [&net] {
    struct Holder {
      std::shared_ptr<const TilePartition> part;
      std::size_t MemoryBytes() const { return part->MemoryBytes(); }
    };
    return std::make_unique<Holder>(
        Holder{TilePartition::Build(*net.topology(), 16)});
  });
}

TEST(MemOracleTest, TiledWeightOverlay) {
  // A shard's true per-view increment: OverlayMemoryBytes() of a
  // SharedView must cover the tiled weight payload it actually allocates
  // (the network is built and retiled OUTSIDE the measured build, so the
  // delta is only the overlay copy).
  RoadNetwork base = testing::MakeGrid(60);
  base.BuildAdjacencyIndex();
  base.Retile(16);
  ExpectEstimateWithinOracle("TiledWeightOverlay", [&base] {
    struct Holder {
      RoadNetwork view;
      std::size_t MemoryBytes() const { return view.OverlayMemoryBytes(); }
    };
    return std::make_unique<Holder>(Holder{base.SharedView()});
  });
}

#else  // !CKNN_HAVE_MALLOC_USABLE_SIZE

TEST(MemOracleTest, SkippedWithoutMallocUsableSize) {
  GTEST_SKIP() << "malloc_usable_size unavailable on this platform";
}

#endif

}  // namespace
}  // namespace cknn

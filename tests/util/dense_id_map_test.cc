#include "src/util/dense_id_map.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/rng.h"

namespace cknn {
namespace {

TEST(DenseIdMapTest, InsertFindErase) {
  DenseIdMap<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(5), nullptr);
  m[5] = 42;
  ASSERT_NE(m.Find(5), nullptr);
  EXPECT_EQ(*m.Find(5), 42);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.Erase(5));
  EXPECT_FALSE(m.Erase(5));
  EXPECT_EQ(m.Find(5), nullptr);
  EXPECT_TRUE(m.empty());
}

TEST(DenseIdMapTest, ClearIsEpochBumpNotSweep) {
  DenseIdMap<int> m;
  for (std::uint64_t i = 0; i < 300; ++i) m[i] = static_cast<int>(i);
  EXPECT_EQ(m.size(), 300u);
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
  for (std::uint64_t i = 0; i < 300; ++i) EXPECT_EQ(m.Find(i), nullptr);
  // Re-inserting after Clear default-constructs fresh values.
  m[7];
  EXPECT_EQ(*m.Find(7), 0);
}

TEST(DenseIdMapTest, OverflowIdsAboveDenseLimit) {
  DenseIdMap<int> m;
  const std::uint64_t big = DenseIdMap<int>::kDenseLimit + 123;
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  m[big] = 1;
  m[max] = 2;
  m[big - DenseIdMap<int>::kDenseLimit] = 3;  // Dense id 123 must not alias.
  EXPECT_EQ(*m.Find(big), 1);
  EXPECT_EQ(*m.Find(max), 2);
  EXPECT_EQ(*m.Find(123), 3);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(m.Erase(max));
  EXPECT_EQ(m.Find(max), nullptr);
  m.Clear();
  EXPECT_EQ(m.Find(big), nullptr);
}

TEST(DenseIdMapTest, ForEachVisitsDenseAscendingThenOverflow) {
  DenseIdMap<int> m;
  m[900] = 9;
  m[3] = 1;
  m[70] = 7;
  const std::uint64_t big = DenseIdMap<int>::kDenseLimit + 5;
  m[big] = 99;
  std::vector<std::uint64_t> ids;
  m.ForEach([&](std::uint64_t id, const int& v) {
    (void)v;
    ids.push_back(id);
  });
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], 3u);
  EXPECT_EQ(ids[1], 70u);
  EXPECT_EQ(ids[2], 900u);
  EXPECT_EQ(ids[3], big);
}

TEST(DenseIdMapTest, ValuePointersStableAcrossInserts) {
  DenseIdMap<int> m;
  m[1] = 11;
  int* p = m.Find(1);
  // Force many page allocations (page-table reallocation included).
  for (std::uint64_t i = 0; i < 10000; i += 64) m[i] = static_cast<int>(i);
  EXPECT_EQ(p, m.Find(1));
  EXPECT_EQ(*p, 11);
}

TEST(DenseIdMapTest, RandomizedDifferentialAgainstUnorderedMap) {
  Rng rng(0xD15EA5E);
  DenseIdMap<double> dense;
  std::unordered_map<std::uint64_t, double> ref;
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t id = rng.NextIndex(512);
    switch (rng.NextIndex(4)) {
      case 0: {
        const double v = rng.Uniform(0.0, 1.0);
        dense[id] = v;
        ref[id] = v;
        break;
      }
      case 1:
        EXPECT_EQ(dense.Erase(id), ref.erase(id) != 0);
        break;
      case 2: {
        auto it = ref.find(id);
        const double* p = dense.Find(id);
        ASSERT_EQ(p != nullptr, it != ref.end());
        if (p != nullptr) {
          EXPECT_EQ(*p, it->second);
        }
        break;
      }
      case 3:
        if (rng.NextIndex(200) == 0) {
          dense.Clear();
          ref.clear();
        }
        break;
    }
    ASSERT_EQ(dense.size(), ref.size());
  }
  std::size_t visited = 0;
  dense.ForEach([&](std::uint64_t id, const double& v) {
    ++visited;
    auto it = ref.find(id);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(DenseIdMapTest, MemoryBytesGrowsWithPagesAndSurvivesClear) {
  DenseIdMap<int> m;
  const std::size_t empty_bytes = m.MemoryBytes();
  for (std::uint64_t i = 0; i < 1000; ++i) m[i] = 1;
  const std::size_t filled = m.MemoryBytes();
  EXPECT_GT(filled, empty_bytes);
  // Pages are retained by Clear (that is the point of the epoch scheme).
  m.Clear();
  EXPECT_EQ(m.MemoryBytes(), filled);
}

}  // namespace
}  // namespace cknn

#include "src/util/stopwatch.h"

#include <chrono>
#include <thread>

#include "gtest/gtest.h"

namespace cknn {
namespace {

TEST(StopwatchTest, StartsNearZero) {
  Stopwatch sw;
  // A freshly constructed stopwatch should read essentially zero; allow a
  // generous bound for slow CI machines.
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch sw;
  double prev = sw.ElapsedSeconds();
  for (int i = 0; i < 100; ++i) {
    const double now = sw.ElapsedSeconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(StopwatchTest, MeasuresSleep) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // steady_clock sleeps can only over-shoot, never under-shoot.
  EXPECT_GE(sw.ElapsedSeconds(), 0.009);
}

TEST(StopwatchTest, MicrosMatchesSeconds) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const double seconds = sw.ElapsedSeconds();
  const double micros = sw.ElapsedMicros();
  // Two reads straddle a tiny interval; they must agree to well under the
  // slept millisecond when converted to the same unit.
  EXPECT_NEAR(micros / 1e6, seconds, 0.1);
  EXPECT_GT(micros, 0.0);
}

TEST(StopwatchTest, ResetRestartsWindow) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const double before = sw.ElapsedSeconds();
  EXPECT_GE(before, 0.049);
  // A single Reset-then-read can race with preemption on a loaded CI
  // machine, so retry: one sub-`before` reading proves the window
  // restarted.
  bool restarted = false;
  for (int i = 0; i < 100 && !restarted; ++i) {
    sw.Reset();
    restarted = sw.ElapsedSeconds() < before;
  }
  EXPECT_TRUE(restarted);
}

}  // namespace
}  // namespace cknn

#include "src/util/status.h"

#include <set>
#include <string>

#include "gtest/gtest.h"
#include "src/util/result.h"

namespace cknn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("bad").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  const Status st = Status::InvalidArgument("k must be >= 1");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "k must be >= 1");
  EXPECT_EQ(st.ToString(), "InvalidArgument: k must be >= 1");
}

TEST(StatusTest, CopyPreservesState) {
  const Status st = Status::NotFound("gone");
  Status copy = st;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), "gone");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

// StatusCodeName's switch has no `default:`, so -Wswitch under -Werror
// forces a case for every enumerator at compile time; this test covers the
// runtime half of the contract — every code maps to a distinct,
// non-empty name (a copy-pasted case body would collide here).
TEST(StatusTest, CodeNamesAreExhaustiveAndUnique) {
  std::set<std::string> seen;
  for (int c = 0; c < kNumStatusCodes; ++c) {
    const char* name = StatusCodeName(static_cast<StatusCode>(c));
    ASSERT_NE(name, nullptr);
    ASSERT_FALSE(std::string(name).empty());
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate status code name: " << name;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumStatusCodes));
}

TEST(StatusTest, CheckOkPassesOnOkStatus) {
  // Also compile-coverage for the macro: it must be usable from any TU
  // that includes status.h alone. (The failure path aborts by design and
  // is exercised by the lint fixtures, not at runtime here.)
  CKNN_CHECK_OK(Status::OK());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  CKNN_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  CKNN_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UseHalf(7, &out).IsInvalidArgument());
}

}  // namespace
}  // namespace cknn

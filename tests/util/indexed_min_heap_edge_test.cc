// Edge cases for IndexedMinHeap beyond the basic suite: duplicate keys,
// decrease-key interleavings, Erase of interior/leaf/root nodes, and a
// randomized differential check against a sorted reference.

#include "src/util/indexed_min_heap.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/rng.h"

namespace cknn {
namespace {

TEST(IndexedMinHeapEdgeTest, DuplicateKeysAllPopped) {
  IndexedMinHeap heap;
  for (std::uint64_t id = 0; id < 10; ++id) heap.Push(id, 1.0);
  std::vector<bool> seen(10, false);
  for (int i = 0; i < 10; ++i) {
    const auto entry = heap.Pop();
    EXPECT_DOUBLE_EQ(entry.key, 1.0);
    EXPECT_FALSE(seen[entry.id]);
    seen[entry.id] = true;
  }
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedMinHeapEdgeTest, PushOrDecreaseIgnoresLargerKey) {
  IndexedMinHeap heap;
  heap.Push(7, 2.0);
  EXPECT_FALSE(heap.PushOrDecrease(7, 3.0));
  EXPECT_DOUBLE_EQ(heap.KeyOf(7), 2.0);
  EXPECT_FALSE(heap.PushOrDecrease(7, 2.0));  // equal key: no change
  EXPECT_TRUE(heap.PushOrDecrease(7, 1.5));
  EXPECT_DOUBLE_EQ(heap.KeyOf(7), 1.5);
  EXPECT_EQ(heap.size(), 1u);
}

TEST(IndexedMinHeapEdgeTest, DecreaseKeyPromotesToTop) {
  IndexedMinHeap heap;
  for (std::uint64_t id = 0; id < 32; ++id) {
    heap.Push(id, 10.0 + static_cast<double>(id));
  }
  EXPECT_TRUE(heap.PushOrDecrease(31, 0.5));
  EXPECT_EQ(heap.Top().id, 31u);
  EXPECT_DOUBLE_EQ(heap.Top().key, 0.5);
}

TEST(IndexedMinHeapEdgeTest, EraseRootLeafAndInterior) {
  IndexedMinHeap heap;
  for (std::uint64_t id = 0; id < 15; ++id) {
    heap.Push(id, static_cast<double>(id));
  }
  EXPECT_TRUE(heap.Erase(0));    // root
  EXPECT_TRUE(heap.Erase(14));   // last leaf
  EXPECT_TRUE(heap.Erase(5));    // interior
  EXPECT_FALSE(heap.Erase(5));   // already gone
  EXPECT_FALSE(heap.Erase(99));  // never present
  EXPECT_EQ(heap.size(), 12u);

  double prev = -std::numeric_limits<double>::infinity();
  while (!heap.empty()) {
    const auto entry = heap.Pop();
    EXPECT_NE(entry.id, 0u);
    EXPECT_NE(entry.id, 14u);
    EXPECT_NE(entry.id, 5u);
    EXPECT_GE(entry.key, prev);
    prev = entry.key;
  }
}

TEST(IndexedMinHeapEdgeTest, EraseLastElementLeavesEmptyHeap) {
  IndexedMinHeap heap;
  heap.Push(1, 1.0);
  EXPECT_TRUE(heap.Erase(1));
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.Contains(1));
  heap.Push(1, 2.0);  // id is reusable after erase
  EXPECT_DOUBLE_EQ(heap.KeyOf(1), 2.0);
}

TEST(IndexedMinHeapEdgeTest, ClearThenReuse) {
  IndexedMinHeap heap;
  for (std::uint64_t id = 0; id < 8; ++id) heap.Push(id, 8.0 - id);
  heap.Clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_FALSE(heap.Contains(3));
  heap.Push(3, 1.0);
  EXPECT_EQ(heap.Top().id, 3u);
}

TEST(IndexedMinHeapEdgeTest, NegativeAndExtremeKeys) {
  IndexedMinHeap heap;
  heap.Push(1, std::numeric_limits<double>::max());
  heap.Push(2, -std::numeric_limits<double>::max());
  heap.Push(3, 0.0);
  heap.Push(4, -0.0);
  EXPECT_EQ(heap.Pop().id, 2u);
  // 0.0 and -0.0 compare equal; either order is fine.
  const auto a = heap.Pop();
  const auto b = heap.Pop();
  EXPECT_DOUBLE_EQ(a.key, 0.0);
  EXPECT_DOUBLE_EQ(b.key, 0.0);
  EXPECT_EQ(heap.Pop().id, 1u);
}

TEST(IndexedMinHeapEdgeTest, LargeIdsDoNotCollide) {
  IndexedMinHeap heap;
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
  heap.Push(big, 2.0);
  heap.Push(big - 1, 1.0);
  heap.Push(0, 3.0);
  EXPECT_EQ(heap.Pop().id, big - 1);
  EXPECT_EQ(heap.Pop().id, big);
  EXPECT_EQ(heap.Pop().id, 0u);
}

TEST(IndexedMinHeapEdgeTest, RandomizedDifferentialAgainstMultimap) {
  Rng rng(20260729);
  IndexedMinHeap heap;
  // Reference: id -> key. Validates Contains/KeyOf/Pop order.
  std::map<std::uint64_t, double> reference;

  for (int step = 0; step < 5000; ++step) {
    const auto id = static_cast<std::uint64_t>(rng.UniformInt(0, 199));
    const double key = rng.Uniform(0.0, 100.0);
    switch (rng.UniformInt(0, 3)) {
      case 0: {  // PushOrDecrease
        auto it = reference.find(id);
        const bool changed = heap.PushOrDecrease(id, key);
        if (it == reference.end()) {
          EXPECT_TRUE(changed);
          reference[id] = key;
        } else if (key < it->second) {
          EXPECT_TRUE(changed);
          it->second = key;
        } else {
          EXPECT_FALSE(changed);
        }
        break;
      }
      case 1: {  // Erase
        const bool had = reference.erase(id) != 0;
        EXPECT_EQ(heap.Erase(id), had);
        break;
      }
      case 2: {  // Pop the minimum
        if (reference.empty()) {
          EXPECT_TRUE(heap.empty());
          break;
        }
        auto min_it = std::min_element(
            reference.begin(), reference.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
        const auto entry = heap.Pop();
        EXPECT_DOUBLE_EQ(entry.key, min_it->second);
        // Ties may pop any id with the minimal key.
        EXPECT_DOUBLE_EQ(reference.at(entry.id), entry.key);
        reference.erase(entry.id);
        break;
      }
      default: {  // Query
        EXPECT_EQ(heap.Contains(id), reference.count(id) != 0);
        if (reference.count(id) != 0) {
          EXPECT_DOUBLE_EQ(heap.KeyOf(id), reference.at(id));
        }
        EXPECT_EQ(heap.size(), reference.size());
      }
    }
  }
}

}  // namespace
}  // namespace cknn

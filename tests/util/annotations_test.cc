// Runtime semantics of the annotated synchronization primitives
// (src/util/annotations.h). The static side — Clang's thread-safety
// analysis — is exercised by the CI static-analysis job; these tests pin
// the wrappers' behavior so the annotations can never drift from being
// zero-cost aliases of the std primitives.

#include "src/util/annotations.h"

#include <thread>
#include <type_traits>
#include <vector>

#include "gtest/gtest.h"

namespace cknn {
namespace {

TEST(AnnotationsTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  long counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, 100000);
}

TEST(AnnotationsTest, TryLockReportsContention) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(AnnotationsTest, CondVarWaitReleasesAndReacquires) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    // The mutex must be held again here: this write races with the
    // notifier's only if Wait failed to reacquire.
    ready = false;
  });
  {
    // If Wait did not release the mutex, this Lock would deadlock.
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  MutexLock lock(mu);
  EXPECT_FALSE(ready);
}

TEST(AnnotationsTest, CondVarNotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  int released = 0;
  bool go = false;
  std::vector<std::thread> threads;
  threads.reserve(3);
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++released;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(released, 3);
}

TEST(AnnotationsTest, ThreadRoleIsZeroCost) {
  // ThreadRole is a statically-checked contract with no runtime state;
  // Assert() must be callable from any context and compile to nothing.
  ThreadRole role;
  role.Assert();
  EXPECT_TRUE(std::is_empty<ThreadRole>::value);
}

}  // namespace
}  // namespace cknn

#include "src/util/bucket_queue.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/indexed_min_heap.h"
#include "src/util/rng.h"
#include "tests/fuzz_util.h"

namespace cknn {
namespace {

TEST(BucketQueueTest, EmptyBasics) {
  BucketQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.Contains(3));
}

TEST(BucketQueueTest, PopsInKeyOrder) {
  BucketQueue q;
  q.Push(10, 3.0);
  q.Push(20, 1.0);
  q.Push(30, 2.0);
  EXPECT_EQ(q.Pop().id, 20u);
  EXPECT_EQ(q.Pop().id, 30u);
  EXPECT_EQ(q.Pop().id, 10u);
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueueTest, ExactWithinOneBucket) {
  // All keys fall in the same bucket (width 10); the min-scan must still
  // find the exact minimum — the width is a performance knob only.
  BucketQueue q(10.0);
  q.Push(1, 4.25);
  q.Push(2, 4.0);
  q.Push(3, 4.5);
  EXPECT_DOUBLE_EQ(q.Pop().key, 4.0);
  EXPECT_DOUBLE_EQ(q.Pop().key, 4.25);
  EXPECT_DOUBLE_EQ(q.Pop().key, 4.5);
}

TEST(BucketQueueTest, DecreaseKeyReordersEntries) {
  BucketQueue q;
  q.Push(1, 5.0);
  q.Push(2, 4.0);
  EXPECT_TRUE(q.PushOrDecrease(1, 1.0));
  EXPECT_DOUBLE_EQ(q.KeyOf(1), 1.0);
  EXPECT_EQ(q.Pop().id, 1u);
  EXPECT_FALSE(q.PushOrDecrease(2, 9.0));
  EXPECT_DOUBLE_EQ(q.KeyOf(2), 4.0);
}

TEST(BucketQueueTest, EraseRemovesMiddleEntry) {
  BucketQueue q;
  for (int i = 0; i < 10; ++i) {
    q.Push(static_cast<std::uint64_t>(i), static_cast<double>(i));
  }
  EXPECT_TRUE(q.Erase(5));
  EXPECT_FALSE(q.Erase(5));
  EXPECT_EQ(q.size(), 9u);
  std::vector<std::uint64_t> order;
  while (!q.empty()) order.push_back(q.Pop().id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 6, 7, 8, 9}));
}

TEST(BucketQueueTest, InsertBelowBaseAfterPops) {
  // IMA's frontier repair can re-insert keys below the last popped minimum;
  // such keys clamp into bucket 0 and must still come out first.
  BucketQueue q(1.0);
  q.Push(1, 10.0);
  q.Push(2, 12.0);
  EXPECT_EQ(q.Pop().id, 1u);
  q.Push(3, 3.0);  // Far below base_ (10.0).
  q.Push(4, 5.0);
  EXPECT_EQ(q.Pop().id, 3u);
  EXPECT_EQ(q.Pop().id, 4u);
  EXPECT_EQ(q.Pop().id, 2u);
}

TEST(BucketQueueTest, OverflowRedistributes) {
  // Keys spanning far beyond 64 bucket widths force the overflow bucket
  // and, once the low range drains, a rebase.
  BucketQueue q(1.0);
  for (int i = 0; i < 50; ++i) {
    q.Push(static_cast<std::uint64_t>(i), static_cast<double>(i) * 37.0);
  }
  for (int i = 0; i < 50; ++i) {
    const auto e = q.Pop();
    EXPECT_EQ(e.id, static_cast<std::uint64_t>(i));
    EXPECT_DOUBLE_EQ(e.key, static_cast<double>(i) * 37.0);
  }
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueueTest, ClearEmptiesAndResetsBase) {
  BucketQueue q;
  q.Push(1, 100.0);
  q.Clear();
  EXPECT_TRUE(q.empty());
  q.Push(1, 2.0);  // Reusable; new base well below the old one.
  EXPECT_DOUBLE_EQ(q.Top().key, 2.0);
}

TEST(BucketQueueTest, MemoryBytesCountsBucketsAndPositionIndex) {
  BucketQueue q;
  const std::size_t empty_bytes = q.MemoryBytes();
  for (std::uint64_t id = 0; id < 500; ++id) {
    q.Push(id, static_cast<double>(id) * 0.7);
  }
  EXPECT_GE(q.MemoryBytes(),
            empty_bytes + 500 * sizeof(BucketQueue::Entry));
}

/// One differential round: drive BucketQueue, IndexedMinHeap, and a
/// std::multimap reference through an identical op tape. Pop keys must
/// match the reference min exactly; ids may permute within equal-key
/// groups, so id equality is only asserted when the min key is unique.
void DifferentialRound(std::uint64_t seed, double width, int ops) {
  Rng rng(seed);
  BucketQueue bucket(width);
  IndexedMinHeap heap;
  std::map<std::uint64_t, double> ref;  // id -> key
  const int kMaxId = 300;

  auto ref_min_key = [&] {
    double best = 0.0;
    bool first = true;
    for (const auto& [id, key] : ref) {
      if (first || key < best) best = key, first = false;
    }
    return best;
  };

  for (int op = 0; op < ops; ++op) {
    const int action = static_cast<int>(rng.NextIndex(10));
    if (action < 4) {  // Push a fresh id.
      const std::uint64_t id = rng.NextIndex(kMaxId);
      if (ref.count(id) != 0) continue;
      const double key = rng.Uniform(0.0, 200.0);
      bucket.Push(id, key);
      heap.Push(id, key);
      ref[id] = key;
    } else if (action < 7) {  // PushOrDecrease (any id).
      const std::uint64_t id = rng.NextIndex(kMaxId);
      const double key = rng.Uniform(0.0, 200.0);
      const auto it = ref.find(id);
      const bool want = it == ref.end() || key < it->second;
      ASSERT_EQ(bucket.PushOrDecrease(id, key), want);
      ASSERT_EQ(heap.PushOrDecrease(id, key), want);
      if (want) ref[id] = key;
    } else if (action < 8) {  // Erase (any id).
      const std::uint64_t id = rng.NextIndex(kMaxId);
      const bool want = ref.erase(id) != 0;
      ASSERT_EQ(bucket.Erase(id), want);
      ASSERT_EQ(heap.Erase(id), want);
    } else if (action < 9 && !ref.empty()) {  // Pop the minimum.
      const double want_key = ref_min_key();
      const auto be = bucket.Pop();
      const auto he = heap.Pop();
      ASSERT_DOUBLE_EQ(be.key, want_key);
      ASSERT_DOUBLE_EQ(he.key, want_key);
      // Each structure may pick a different id among equal keys; both
      // choices must exist in the reference with that exact key.
      ASSERT_TRUE(ref.count(be.id) != 0 && ref[be.id] == want_key);
      // Re-align: erase the bucket's choice from ref, and the heap's
      // choice from both if it differs (keeps all three sets equal).
      ref.erase(be.id);
      if (he.id != be.id) {
        ASSERT_TRUE(ref.count(he.id) != 0 && ref[he.id] == want_key);
        ref.erase(he.id);
        ASSERT_TRUE(bucket.Erase(he.id));
        ASSERT_TRUE(heap.Erase(be.id));
      }
    } else if (!ref.empty()) {  // Top / Contains / KeyOf spot checks.
      ASSERT_DOUBLE_EQ(bucket.Top().key, ref_min_key());
      const std::uint64_t id = rng.NextIndex(kMaxId);
      const auto it = ref.find(id);
      ASSERT_EQ(bucket.Contains(id), it != ref.end());
      if (it != ref.end()) {
        ASSERT_DOUBLE_EQ(bucket.KeyOf(id), it->second);
      }
    }
    ASSERT_EQ(bucket.size(), ref.size());
    // The heap can be ahead by the extra erase above; keep sizes equal.
    ASSERT_EQ(heap.size(), ref.size());
  }
  // Drain: the two structures must produce identical key sequences.
  while (!ref.empty()) {
    const double want_key = ref_min_key();
    const auto be = bucket.Pop();
    ASSERT_DOUBLE_EQ(be.key, want_key);
    ASSERT_TRUE(ref.count(be.id) != 0 && ref[be.id] == want_key);
    ref.erase(be.id);
    ASSERT_TRUE(heap.Erase(be.id));
  }
  EXPECT_TRUE(bucket.empty());
  EXPECT_TRUE(heap.empty());
}

TEST(BucketQueueFuzzTest, DifferentialAgainstHeapAndReference) {
  const int rounds = testing::FuzzIterations(12, 200);
  // Widths spanning "everything in one bucket" to "every key overflows".
  const double widths[] = {0.01, 0.5, 1.0, 7.3, 1000.0};
  for (int r = 0; r < rounds; ++r) {
    const double width = widths[r % 5];
    DifferentialRound(testing::FuzzSeed(0xB0C5ull + r), width, 2000);
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "round " << r << " width " << width;
      return;
    }
  }
}

}  // namespace
}  // namespace cknn

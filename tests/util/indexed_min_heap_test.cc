#include "src/util/indexed_min_heap.h"

#include <queue>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/rng.h"

namespace cknn {
namespace {

TEST(IndexedMinHeapTest, EmptyBasics) {
  IndexedMinHeap heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_FALSE(heap.Contains(3));
}

TEST(IndexedMinHeapTest, PopsInKeyOrder) {
  IndexedMinHeap heap;
  heap.Push(10, 3.0);
  heap.Push(20, 1.0);
  heap.Push(30, 2.0);
  EXPECT_EQ(heap.Pop().id, 20u);
  EXPECT_EQ(heap.Pop().id, 30u);
  EXPECT_EQ(heap.Pop().id, 10u);
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedMinHeapTest, DecreaseKeyReordersEntries) {
  IndexedMinHeap heap;
  heap.Push(1, 5.0);
  heap.Push(2, 4.0);
  EXPECT_TRUE(heap.PushOrDecrease(1, 1.0));
  EXPECT_DOUBLE_EQ(heap.KeyOf(1), 1.0);
  EXPECT_EQ(heap.Pop().id, 1u);
}

TEST(IndexedMinHeapTest, PushOrDecreaseIgnoresLargerKey) {
  IndexedMinHeap heap;
  heap.Push(1, 2.0);
  EXPECT_FALSE(heap.PushOrDecrease(1, 3.0));
  EXPECT_DOUBLE_EQ(heap.KeyOf(1), 2.0);
}

TEST(IndexedMinHeapTest, EraseRemovesMiddleEntry) {
  IndexedMinHeap heap;
  for (int i = 0; i < 10; ++i) {
    heap.Push(static_cast<std::uint64_t>(i), static_cast<double>(i));
  }
  EXPECT_TRUE(heap.Erase(5));
  EXPECT_FALSE(heap.Erase(5));
  EXPECT_EQ(heap.size(), 9u);
  std::vector<std::uint64_t> order;
  while (!heap.empty()) order.push_back(heap.Pop().id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 6, 7, 8, 9}));
}

TEST(IndexedMinHeapTest, ClearEmpties) {
  IndexedMinHeap heap;
  heap.Push(1, 1.0);
  heap.Clear();
  EXPECT_TRUE(heap.empty());
  heap.Push(1, 2.0);  // Reusable after clear.
  EXPECT_DOUBLE_EQ(heap.Top().key, 2.0);
}

TEST(IndexedMinHeapTest, TopMatchesPop) {
  IndexedMinHeap heap;
  heap.Push(7, 0.5);
  heap.Push(8, 0.25);
  EXPECT_EQ(heap.Top().id, 8u);
  EXPECT_EQ(heap.Pop().id, 8u);
}

/// Randomized differential test against std::priority_queue with lazy
/// deletion; exercises sift-up/down paths thoroughly.
TEST(IndexedMinHeapTest, RandomizedAgainstStdPriorityQueue) {
  Rng rng(1234);
  for (int round = 0; round < 20; ++round) {
    IndexedMinHeap heap;
    std::vector<double> best(200, -1.0);
    for (int op = 0; op < 500; ++op) {
      const std::uint64_t id = rng.NextIndex(200);
      const double key = rng.NextDouble();
      if (best[id] < 0.0) {
        heap.Push(id, key);
        best[id] = key;
      } else if (key < best[id]) {
        EXPECT_TRUE(heap.PushOrDecrease(id, key));
        best[id] = key;
      }
    }
    double last = -1.0;
    while (!heap.empty()) {
      const auto [id, key] = heap.Pop();
      EXPECT_GE(key, last);
      EXPECT_DOUBLE_EQ(key, best[id]);
      last = key;
    }
  }
}

TEST(IndexedMinHeapTest, MemoryBytesCountsEntriesAndPositionIndex) {
  IndexedMinHeap heap;
  const std::size_t empty_bytes = heap.MemoryBytes();
  for (std::uint64_t id = 0; id < 500; ++id) {
    heap.Push(id, static_cast<double>(id));
  }
  const std::size_t filled = heap.MemoryBytes();
  // At minimum the entry array itself must be accounted for, plus a
  // non-zero position index on top.
  EXPECT_GE(filled, empty_bytes + 500 * sizeof(IndexedMinHeap::Entry));
  EXPECT_GT(filled, 500 * sizeof(IndexedMinHeap::Entry));
}

}  // namespace
}  // namespace cknn

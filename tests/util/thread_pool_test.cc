// Stress suite for the two-stage thread pool (src/util/thread_pool.h):
// repeated RunAll batches with interleaved empty batches, 0-worker pools,
// destruction while parked, and the pipelined two-stage overlap
// (Begin/Wait detached batches composed with concurrent RunAll calls).
// Runs under the `threads` label, which the CI sanitize lane executes
// with ThreadSanitizer — the interleaving cases exist primarily so TSan
// can chew on them.

#include "src/util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/rng.h"
#include "tests/fuzz_util.h"

namespace cknn {
namespace {

std::vector<std::function<void()>> CountingTasks(std::size_t n,
                                                 std::atomic<int>* counter) {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back([counter] {
      counter->fetch_add(1, std::memory_order_relaxed);
    });
  }
  return tasks;
}

TEST(ThreadPoolTest, RepeatedRunAllWithInterleavedEmptyBatches) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  std::atomic<int> counter{0};
  int expected = 0;
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = static_cast<std::size_t>(round % 7);
    const auto tasks = CountingTasks(n, &counter);
    pool.RunAll(tasks);  // Every 7th batch is empty.
    expected += static_cast<int>(n);
    ASSERT_EQ(counter.load(), expected) << "round " << round;
  }
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsEverythingOnTheCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  std::atomic<int> counter{0};
  pool.RunAll(CountingTasks(5, &counter));
  EXPECT_EQ(counter.load(), 5);
  // Begin defers everything to Wait on a 0-worker pool.
  const auto detached = CountingTasks(4, &counter);
  pool.Begin(detached);
  pool.Wait();
  EXPECT_EQ(counter.load(), 9);
}

TEST(ThreadPoolTest, DestructionWhileParked) {
  // Freshly built, never used.
  { ThreadPool pool(4); }
  // Used, then parked between batches.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    pool.RunAll(CountingTasks(16, &counter));
  }
  EXPECT_EQ(counter.load(), 16);
  // A Begin that was Waited, then parked.
  {
    ThreadPool pool(2);
    const auto tasks = CountingTasks(3, &counter);
    pool.Begin(tasks);
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 19);
}

TEST(ThreadPoolTest, WaitWithoutBeginIsANoOp) {
  ThreadPool pool(2);
  pool.Wait();
  std::atomic<int> counter{0};
  const auto empty = CountingTasks(0, &counter);
  pool.Begin(empty);  // Empty detached batch: nothing to run.
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, PipelinedTwoStageOverlap) {
  // Stage A (detached) and stage B (blocking RunAll) share the pool; B is
  // issued while A is in flight — the server's pipelined tick shape. The
  // writes of both stages must be visible after their respective joins.
  ThreadPool pool(2);
  std::atomic<int> stage_a{0};
  std::atomic<int> stage_b{0};
  for (int round = 0; round < 25; ++round) {
    const auto detached = CountingTasks(4, &stage_a);
    pool.Begin(detached);
    // Overlapped blocking stage on the same pool, from the owner thread.
    pool.RunAll(CountingTasks(3, &stage_b));
    ASSERT_EQ(stage_b.load(), 3 * (round + 1));
    pool.Wait();
    ASSERT_EQ(stage_a.load(), 4 * (round + 1));
  }
}

TEST(ThreadPoolTest, DetachedBatchesMakeProgressWithoutWait) {
  // A detached batch must not require Wait() to start: with workers
  // present it drains in the background while the owner is busy.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  const auto tasks = CountingTasks(8, &counter);
  pool.Begin(tasks);
  // Not asserted with a timeout (single-core hosts may legitimately not
  // have scheduled the workers yet); Wait() is the contract.
  pool.Wait();
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPoolTest, RandomizedTwoStageStress) {
  // Randomized interleaving of Begin/RunAll/Wait with varying batch sizes
  // and worker counts; the accounting must stay exact. Seeded via
  // CKNN_FUZZ_SEED, budget via CKNN_FUZZ_SCALE (tests/fuzz_util.h).
  const int cases = testing::FuzzIterations(4, 16);
  for (int c = 0; c < cases; ++c) {
    const std::uint64_t seed = testing::FuzzSeed(8000 + c);
    SCOPED_TRACE("case " + std::to_string(c) + " seed " +
                 std::to_string(seed));
    Rng rng(seed);
    ThreadPool pool(static_cast<int>(rng.NextIndex(5)));  // 0..4 workers.
    std::atomic<int> counter{0};
    int expected = 0;
    const int rounds = testing::FuzzIterations(20, 200);
    for (int round = 0; round < rounds; ++round) {
      const std::size_t detached_n = rng.NextIndex(6);
      const auto detached = CountingTasks(detached_n, &counter);
      pool.Begin(detached);
      const int overlapped = static_cast<int>(rng.NextIndex(3));
      for (int i = 0; i < overlapped; ++i) {
        const std::size_t n = rng.NextIndex(5);
        pool.RunAll(CountingTasks(n, &counter));
        expected += static_cast<int>(n);
      }
      pool.Wait();
      expected += static_cast<int>(detached_n);
      ASSERT_EQ(counter.load(), expected) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace cknn

#include "src/util/mem.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gtest/gtest.h"

namespace cknn {
namespace {

TEST(MemTest, VectorBytesEmpty) {
  std::vector<int> v;
  EXPECT_EQ(VectorBytes(v), v.capacity() * sizeof(int));
}

TEST(MemTest, VectorBytesTracksCapacityNotSize) {
  std::vector<double> v;
  v.reserve(100);
  v.push_back(1.0);
  EXPECT_EQ(VectorBytes(v), v.capacity() * sizeof(double));
  EXPECT_GE(VectorBytes(v), 100 * sizeof(double));
}

TEST(MemTest, VectorBytesGrowsWithElements) {
  std::vector<std::uint64_t> v;
  const std::size_t empty_bytes = VectorBytes(v);
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_GT(VectorBytes(v), empty_bytes);
  EXPECT_GE(VectorBytes(v), 1000 * sizeof(std::uint64_t));
}

TEST(MemTest, HashMapBytesEmpty) {
  std::unordered_map<int, double> m;
  // No elements: only the bucket array counts.
  EXPECT_EQ(HashMapBytes(m), m.bucket_count() * sizeof(void*));
}

TEST(MemTest, HashMapBytesCountsNodesAndBuckets) {
  std::unordered_map<std::uint64_t, double> m;
  for (std::uint64_t i = 0; i < 50; ++i) m[i] = static_cast<double>(i);
  const std::size_t expected =
      m.size() * (sizeof(std::pair<const std::uint64_t, double>) +
                  sizeof(void*)) +
      m.bucket_count() * sizeof(void*);
  EXPECT_EQ(HashMapBytes(m), expected);
  EXPECT_GT(HashMapBytes(m), 50 * sizeof(std::pair<const std::uint64_t,
                                                   double>));
}

TEST(MemTest, HashSetBytesEmpty) {
  std::unordered_set<int> s;
  EXPECT_EQ(HashSetBytes(s), s.bucket_count() * sizeof(void*));
}

TEST(MemTest, HashSetBytesCountsElements) {
  std::unordered_set<std::uint64_t> s;
  for (std::uint64_t i = 0; i < 64; ++i) s.insert(i);
  const std::size_t expected =
      s.size() * (sizeof(std::uint64_t) + sizeof(void*)) +
      s.bucket_count() * sizeof(void*);
  EXPECT_EQ(HashSetBytes(s), expected);
}

TEST(MemTest, EstimatesAreMonotoneInElementCount) {
  std::unordered_map<int, int> small_map;
  std::unordered_map<int, int> big_map;
  for (int i = 0; i < 10; ++i) small_map[i] = i;
  for (int i = 0; i < 1000; ++i) big_map[i] = i;
  EXPECT_LT(HashMapBytes(small_map), HashMapBytes(big_map));

  std::unordered_set<int> small_set;
  std::unordered_set<int> big_set;
  for (int i = 0; i < 10; ++i) small_set.insert(i);
  for (int i = 0; i < 1000; ++i) big_set.insert(i);
  EXPECT_LT(HashSetBytes(small_set), HashSetBytes(big_set));
}

}  // namespace
}  // namespace cknn

#include "src/util/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace cknn {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.Uniform(-5.0, 11.0);
    EXPECT_GE(d, -5.0);
    EXPECT_LT(d, 11.0);
  }
}

TEST(RngTest, NextIndexCoversRange) {
  Rng rng(5);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++seen[rng.NextIndex(10)];
  }
  for (int count : seen) EXPECT_GT(count, 700);
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.UniformInt(2, 4);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 4);
    saw_lo |= v == 2;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(8);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // Astronomically unlikely to be identity.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(12);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

}  // namespace
}  // namespace cknn

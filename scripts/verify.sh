#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full CTest
# suite. This is the exact command sequence ROADMAP.md gates on; run it
# from anywhere, it always operates on the repo root.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${CKNN_BUILD_DIR:-${repo_root}/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j "${jobs}"
(cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")

#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full CTest
# suite. This is the exact command sequence ROADMAP.md gates on; run it
# from anywhere, it always operates on the repo root.
#
# The GoogleTest/Benchmark flavor knobs are honored from the environment
# (e.g. CKNN_REQUIRE_SYSTEM_GTEST=ON scripts/verify.sh) and a stale build
# cache configured for a different flavor is re-configured, not reused —
# see scripts/configure_common.sh.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${CKNN_BUILD_DIR:-${repo_root}/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# shellcheck source=scripts/configure_common.sh
source "${repo_root}/scripts/configure_common.sh"

cknn_configure "${build_dir}" "${repo_root}"
cmake --build "${build_dir}" -j "${jobs}"
(cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")

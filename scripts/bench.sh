#!/usr/bin/env bash
# Benchmark capture pipeline: configure + build the bench/ targets, run
# every figure at the current scale with JSON output, and merge the
# per-figure files into a single BENCH_results.json (schema: {figure, algo,
# sec_per_ts, max_sec, cpu_sec_per_ts, mem_kb, scale, seed}; see
# scripts/bench_merge.py).
#
#   scripts/bench.sh                          # quick scale (default)
#   CKNN_BENCH_SCALE=paper scripts/bench.sh   # the paper's Table-2 scale
#   CKNN_BENCH_SCALE=smoke scripts/bench.sh   # tiny CI capture
#
# Knobs:
#   CKNN_BENCH_SCALE    smoke|quick|paper (default quick)
#   CKNN_BENCH_OUT      merged output path (default <repo>/BENCH_results.json)
#   CKNN_BUILD_DIR      build directory (default <repo>/build, shared with
#                       verify.sh)
#   CKNN_BENCH_FILTER   extra --benchmark_filter regex applied to every
#                       figure (default: none); figures the filter does not
#                       match are skipped before the merge (the real Google
#                       Benchmark emits no JSON at all on a no-match filter)
#   CKNN_BENCH_ONLY     comma-separated figure names (e.g. fig_sharding):
#                       run only those and merge them into the existing
#                       BENCH_results.json (bench_merge.py --append) instead
#                       of rebuilding it from scratch
#   CKNN_FORCE_BENCHMARK_SHIM / CKNN_REQUIRE_SYSTEM_BENCHMARK (and the
#   GTest equivalents) are passed through to CMake with stale-cache
#   protection; see scripts/configure_common.sh.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${CKNN_BUILD_DIR:-${repo_root}/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
scale="${CKNN_BENCH_SCALE:-quick}"
out="${CKNN_BENCH_OUT:-${repo_root}/BENCH_results.json}"
filter="${CKNN_BENCH_FILTER:-}"
only="${CKNN_BENCH_ONLY:-}"
raw_dir="${build_dir}/bench_json"

case "${scale}" in
  smoke|quick|paper) ;;
  *)
    echo "bench.sh: unknown CKNN_BENCH_SCALE '${scale}' (smoke|quick|paper)" >&2
    exit 1
    ;;
esac

# Keep this list in sync with bench/CMakeLists.txt.
figures=(
  ablation_influence
  ablation_reuse
  fig13a_object_cardinality
  fig13b_query_cardinality
  fig14a_k
  fig14b_edge_agility
  fig15a_object_agility
  fig15b_object_speed
  fig16a_query_agility
  fig16b_query_speed
  fig17a_distributions
  fig17b_network_size
  fig18_memory
  fig19_brinkhoff
  fig_pipeline
  fig_serving
  fig_sharding
  fig_tiling
)

merge_args=()
if [[ -n "${only}" ]]; then
  selected=()
  IFS=',' read -ra wanted <<< "${only}"
  for name in "${wanted[@]}"; do
    found=0
    for figure in "${figures[@]}"; do
      [[ "${figure}" == "${name}" ]] && found=1
    done
    if [[ ${found} -eq 0 ]]; then
      echo "bench.sh: unknown figure '${name}' in CKNN_BENCH_ONLY" >&2
      exit 1
    fi
    selected+=("${name}")
  done
  figures=("${selected[@]}")
  merge_args+=(--append)
fi

# shellcheck source=scripts/configure_common.sh
source "${repo_root}/scripts/configure_common.sh"

cknn_configure "${build_dir}" "${repo_root}" -DCKNN_BUILD_BENCH=ON

targets=()
for figure in "${figures[@]}"; do targets+=("bench_${figure}"); done
cmake --build "${build_dir}" -j "${jobs}" --target "${targets[@]}"

mkdir -p "${raw_dir}"
run_args=(--benchmark_format=json)
[[ -n "${filter}" ]] && run_args+=("--benchmark_filter=${filter}")

echo "bench.sh: running ${#figures[@]} figures at ${scale} scale" >&2
json_files=()
for figure in "${figures[@]}"; do
  echo "bench.sh: ${figure}" >&2
  CKNN_BENCH_SCALE="${scale}" \
    "${build_dir}/bench/bench_${figure}" "${run_args[@]}" \
    > "${raw_dir}/${figure}.json"
  if [[ -s "${raw_dir}/${figure}.json" ]]; then
    json_files+=("${raw_dir}/${figure}.json")
  else
    echo "bench.sh: warning: ${figure} produced no JSON" \
         "(filter '${filter}' matched nothing?); skipping" >&2
  fi
done

if [[ ${#json_files[@]} -eq 0 ]]; then
  echo "bench.sh: no figure produced any benchmark output" >&2
  exit 1
fi

# ${arr[@]+...} guard: expanding an empty array under `set -u` is an
# unbound-variable error on bash < 4.4 (macOS /bin/bash).
python3 "${repo_root}/scripts/bench_merge.py" \
  --out "${out}" --scale "${scale}" --seed 42 \
  ${merge_args[@]+"${merge_args[@]}"} "${json_files[@]}"

#!/usr/bin/env bash
# One-shot static-analysis pass, mirroring scripts/verify.sh: every check
# the CI static-analysis job runs, runnable locally from anywhere. Checks
# that need a tool the machine does not have are SKIPPED with a notice
# (same spirit as the gtest-shim fallback), never silently passed — CI
# installs the full toolchain and is the enforcement point.
#
#   1. determinism lint      (python3; self-test + tree run)
#   2. status lint           (python3; self-test + tree run + abort inventory)
#   3. clang thread-safety   (clang++; -Werror=thread-safety build)
#   4. clang-tidy            (clang-tidy; over compile_commands.json)
#
# Exit code: non-zero if any check that RAN failed.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${CKNN_LINT_BUILD_DIR:-${repo_root}/build-lint}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

skipped=()
failed=0

note() { printf 'lint.sh: %s\n' "$*" >&2; }

# --- 1. determinism lint ---------------------------------------------------
if command -v python3 >/dev/null 2>&1; then
  note "determinism lint (self-test + tree)"
  python3 "${repo_root}/scripts/lint/determinism_lint.py" --self-test \
    || failed=1
  python3 "${repo_root}/scripts/lint/determinism_lint.py" \
    --root "${repo_root}" || failed=1
else
  skipped+=("determinism-lint (python3 not found)")
fi

# --- 2. status lint --------------------------------------------------------
if command -v python3 >/dev/null 2>&1; then
  note "status lint (self-test + tree + abort-reachability inventory)"
  python3 "${repo_root}/scripts/lint/status_lint.py" --self-test \
    || failed=1
  python3 "${repo_root}/scripts/lint/status_lint.py" \
    --root "${repo_root}" || failed=1
else
  skipped+=("status-lint (python3 not found)")
fi

# --- 3. clang thread-safety build -----------------------------------------
if command -v clang++ >/dev/null 2>&1; then
  note "clang build with -Werror=thread-safety (${build_dir})"
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCKNN_WERROR=ON >/dev/null
  cmake --build "${build_dir}" -j "${jobs}" || failed=1
else
  skipped+=("thread-safety build (clang++ not found)")
fi

# --- 4. clang-tidy ---------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1 && [[ -d "${build_dir}" ]] \
    && [[ -f "${build_dir}/compile_commands.json" ]]; then
  note "clang-tidy over src/ (config: .clang-tidy)"
  # shellcheck disable=SC2046
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${build_dir}" -quiet \
      "${repo_root}/src/.*\.cc$" || failed=1
  else
    find "${repo_root}/src" -name '*.cc' -print0 \
      | xargs -0 -P "${jobs}" -n 4 clang-tidy -p "${build_dir}" --quiet \
      || failed=1
  fi
else
  skipped+=("clang-tidy (clang-tidy or compile_commands.json not found)")
fi

# --- report ----------------------------------------------------------------
for s in ${skipped[@]+"${skipped[@]}"}; do
  note "SKIPPED: ${s}"
done
if [[ "${failed}" -ne 0 ]]; then
  note "FAILED"
  exit 1
fi
note "OK ($((4 - ${#skipped[@]})) of 4 checks ran)"

// Fixture: a finding escaped with a rule and a reason is clean, whether the
// escape sits on the flagged line or the line above it.
#include <unordered_map>

struct S {
  std::unordered_map<int, int> m_;

  int Sum() const {
    int t = 0;
    // cknn-lint: allow(unordered-iter) commutative integer sum, order-free
    for (const auto& kv : m_) t += kv.second;
    return t;
  }

  int Max() const {
    int best = 0;
    for (const auto& kv : m_) {  // cknn-lint: allow(unordered-iter) max is order-free
      if (kv.second > best) best = kv.second;
    }
    return best;
  }
};

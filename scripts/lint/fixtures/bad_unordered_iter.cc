// Fixture: every banned pattern below must be flagged on the marked line.
// LINT-EXPECT markers name the rule the linter must report for that line.
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Active {
  std::unordered_set<int> queries;
};

struct Index {
  std::unordered_map<int, double> weights_;
  std::vector<std::unordered_map<int, int>> il_;
  std::map<int, Active> by_id_;

  double Sum() const {
    double total = 0.0;
    for (const auto& kv : weights_) {  // LINT-EXPECT: unordered-iter
      total += kv.second;
    }
    return total;
  }

  int First() const {
    auto it = weights_.begin();  // LINT-EXPECT: unordered-iter
    return it == weights_.end() ? -1 : it->first;
  }

  int Nested() const {
    int n = 0;
    for (const auto& kv : il_[0]) {  // LINT-EXPECT: unordered-iter
      n += kv.second;
    }
    return n;
  }

  int Member(const Active& a) const {
    int n = 0;
    for (int q : a.queries) {  // LINT-EXPECT: unordered-iter
      n += q;
    }
    return n;
  }
};

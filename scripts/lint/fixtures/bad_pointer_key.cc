// Fixture: pointer-keyed ordered containers iterate in address order,
// which ASLR re-rolls every run.
#include <map>
#include <set>

struct Node {
  int id;
};

struct Registry {
  std::map<Node*, int> ranks_;        // LINT-EXPECT: pointer-key
  std::set<const Node*> live_;        // LINT-EXPECT: pointer-key
  std::multimap<Node*, int> edges_;   // LINT-EXPECT: pointer-key
};

// Fixture: escape-comment handling. An allow without a reason is itself an
// error, and an allow that matches no finding is stale.
#include <unordered_map>

struct S {
  std::unordered_map<int, int> m_;

  int Sum() const {
    int t = 0;
    // cknn-lint: allow(unordered-iter)
    for (const auto& kv : m_) t += kv.second;  // LINT-EXPECT: allow-missing-reason
    return t;
  }

  int WrongRule() const {
    int t = 0;
    // cknn-lint: allow(wall-clock) escaping the wrong rule does not help
    for (const auto& kv : m_) t += kv.second;  // LINT-EXPECT: unordered-iter
    return t;
  }

  int Count() const {
    // cknn-lint: allow(unordered-iter) nothing here iterates anymore -- LINT-EXPECT: stale-allow
    return static_cast<int>(m_.size());
  }
};

// Fixture: the clean patterns -- point lookups into unordered containers
// (no iteration), ordered iteration via a sorted sibling, and ordered maps
// keyed by values rather than pointers.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

struct S {
  std::unordered_map<std::uint64_t, double> weights_;
  std::vector<std::uint64_t> ordered_ids_;  // Kept sorted on insert.
  std::map<std::uint64_t, double> by_id_;

  double Lookup(std::uint64_t id) const {
    auto it = weights_.find(id);
    return it == weights_.end() ? 0.0 : it->second;
  }

  double SumInIdOrder() const {
    double total = 0.0;
    for (std::uint64_t id : ordered_ids_) total += Lookup(id);
    return total;
  }

  double FirstByKey() const {
    auto it = by_id_.begin();
    return it == by_id_.end() ? 0.0 : it->second;
  }
};

// Fixture: bare (void)-discards of Status/Result-returning calls must be
// flagged; CKNN_IGNORE_STATUS is the only sanctioned drop.
#include "src/util/result.h"
#include "src/util/status.h"

namespace cknn {

Status Flush();
Result<int> TryCount();

void Caller() {
  (void)Flush();                  // LINT-EXPECT: status-discard
  static_cast<void>(TryCount());  // LINT-EXPECT: status-discard
}

}  // namespace cknn

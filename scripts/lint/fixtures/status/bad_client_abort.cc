// Fixture: abort paths in a client-reachable file (the self-test lints
// every fixture as if it lived under src/serve/) must be flagged unless
// escaped with a reason.
#include "src/util/macros.h"
#include "src/util/status.h"

namespace cknn {

Status SomeStatus();

void HandleFrame(int payload) {
  CKNN_CHECK(payload > 0);       // LINT-EXPECT: client-abort
  CKNN_DCHECK(payload < 100);    // LINT-EXPECT: client-abort
  CKNN_CHECK_OK(SomeStatus());   // LINT-EXPECT: client-abort
  if (payload == 42) {
    std::abort();                // LINT-EXPECT: client-abort
  }
}

}  // namespace cknn

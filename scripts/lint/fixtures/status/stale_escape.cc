// Fixture: escape comments that no longer match a finding on their own or
// the following line must rot (stale-allow), so fixed code sheds its
// escapes.
#include "src/util/status.h"

namespace cknn {

Status Flush();

void Caller() {
  // cknn-lint: allow(status-discard) stale: the discard below was fixed  LINT-EXPECT: stale-allow
  Status st = Flush();
  if (!st.ok()) return;
}

void Lifecycle() {
  // cknn-lint: allow(abort) stale: the CHECK below became a Status return  LINT-EXPECT: stale-allow
  Status unused = Flush();
}

}  // namespace cknn

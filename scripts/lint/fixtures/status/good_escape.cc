// Fixture: properly escaped sites and CKNN_IGNORE_STATUS drops produce no
// findings (no LINT-EXPECT markers in this file).
#include "src/util/macros.h"
#include "src/util/status.h"

namespace cknn {

Status Flush();

void Shutdown() {
  // cknn-lint: allow(status-discard) shutdown path: the error was already latched upstream
  (void)Flush();
  CKNN_IGNORE_STATUS(Flush(), "best-effort tail flush on shutdown");
  // cknn-lint: allow(abort) construction-time precondition; no client input reaches it
  CKNN_CHECK(true);
}

}  // namespace cknn

// Fixture: wall-clock and unseeded-randomness reads in a result path.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

inline double Jitter() {
  return static_cast<double>(rand()) / RAND_MAX;  // LINT-EXPECT: raw-rand
}

inline long NowNanos() {
  auto t = std::chrono::steady_clock::now();  // LINT-EXPECT: wall-clock
  return std::chrono::duration_cast<std::chrono::nanoseconds>(  // LINT-EXPECT: wall-clock
             t.time_since_epoch())
      .count();
}

inline unsigned Seed() {
  std::random_device rd;  // LINT-EXPECT: raw-rand
  return rd();
}

inline long Stamp() {
  return static_cast<long>(time(nullptr));  // LINT-EXPECT: wall-clock
}

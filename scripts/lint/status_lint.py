#!/usr/bin/env python3
"""Status-discipline lint: dropped errors and client-reachable aborts.

Companion of determinism_lint.py (whose comment-stripping and escape
machinery this file imports). The serving contract established in PR 8 —
"nothing client-reachable can trip a `CKNN_CHECK`" — and the error-
propagation contract behind `CKNN_NODISCARD` are enforced here, where the
compiler cannot see them:

  status-discard   a bare `(void)` / `static_cast<void>` cast of a call
                   returning cknn::Status or cknn::Result<T>. The cast
                   silences [[nodiscard]] without leaving an audit trail;
                   deliberate drops must use CKNN_IGNORE_STATUS(expr,
                   "reason") instead.
  client-abort     CKNN_CHECK / CKNN_CHECK_OK / CKNN_DCHECK / abort() in
                   the client-reachable layers: every file under
                   src/serve/ and tools/, plus the body of any
                   `Try*`/`Submit*` entry-point function anywhere in the
                   tree. A client must get a Status back, never a process
                   abort.
  abort-reach      the transitive abort-reachability inventory: a
                   grep-built call graph is walked from the cknn_serve
                   opcode handlers (`HandlePayload`, `ServeConnection`);
                   every reached function that contains an un-escaped
                   CKNN_CHECK/CKNN_CHECK_OK/abort() must carry a reasoned
                   entry in scripts/lint/abort_inventory.txt. An entry
                   whose function left the inventory set is itself an
                   error (stale-inventory), so the list cannot rot.

`CKNN_DCHECK` counts as an abort in the client layers (a debug-built
server must not abort on client input either) but not in the reachability
walk — production serving builds compile it out, and the inventory
documents the production surface.

The call graph is grep-built and blunt by design: calls resolve by bare
function name to every definition of that name (virtual dispatch and
overloads collapse into one node), receivers are ignored, and names the
tree does not define are external. False edges cost an inventory entry
with an honest reason; missed edges are limited to calls through function
pointers/std::function, which the serving surface does not use.

Escapes use the shared syntax, with rule `abort` covering both abort
rules at the flagged site:

    CKNN_CHECK(server_ != nullptr);  // cknn-lint: allow(abort) ctor precondition

Self-tests: `--self-test` lints the fixtures under
scripts/lint/fixtures/status/ against their `LINT-EXPECT: <rule>` markers
(every fixture is treated as client-reachable, and the reachability walk
runs per fixture with an empty inventory).

Exit code: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from determinism_lint import (  # noqa: E402
    ALLOW_RE,
    EXPECT_RE,
    find_allows,
    strip_comments_and_strings,
)

RULES = {
    "status-discard":
        "(void)-cast of a Status/Result-returning call drops the error "
        "without an audit trail; use CKNN_IGNORE_STATUS(expr, \"reason\")",
    "client-abort":
        "abort path in a client-reachable layer (src/serve, tools, "
        "Try*/Submit* entry points); report a Status instead, or escape "
        "with a reason why no client input can reach it",
    "abort-reach":
        "function reachable from the cknn_serve opcode handlers contains "
        "an abort; add a reasoned entry to scripts/lint/abort_inventory.txt "
        "or restructure the path to propagate a Status",
    "stale-inventory":
        "abort_inventory.txt entry matches no reachable abort-carrying "
        "function; remove it so the inventory stays an honest surface map",
}

DEFAULT_DIRS = ("src", "tools")
CLIENT_DIRS = ("src/serve", "tools")
ROOTS = ("HandlePayload", "ServeConnection")
SOURCE_EXTS = (".h", ".cc", ".cpp", ".hpp")

# Abort tokens. CKNN_DCHECK joins only in the client layers (see module
# docstring).
ABORT_RE = re.compile(
    r"\bCKNN_CHECK\s*\(|\bCKNN_CHECK_OK\s*\(|"
    r"\b(?:std\s*::\s*)?abort\s*\(")
CLIENT_ABORT_RE = re.compile(
    r"\bCKNN_CHECK\s*\(|\bCKNN_CHECK_OK\s*\(|\bCKNN_DCHECK\s*\(|"
    r"\b(?:std\s*::\s*)?abort\s*\(")

# Declarations returning Status or Result<...>: `Status Name(`,
# `Result<T> Name(`, optionally virtual/static/class-qualified.
STATUS_DECL_RE = re.compile(
    r"\b(?:Status|Result\s*<[^;{}]*?>)\s+"
    r"(?:[A-Za-z_]\w*\s*::\s*)?([A-Za-z_]\w*)\s*\(")

# A (void)/static_cast<void> cast followed by a (possibly qualified) call.
VOID_CAST_RE = re.compile(
    r"(?:\(\s*void\s*\)|static_cast\s*<\s*void\s*>\s*\()\s*"
    r"((?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*)([A-Za-z_]\w*)\s*\(")

CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
NON_CALL_NAMES = frozenset((
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "static_assert", "decltype", "alignof", "defined", "assert",
    "new", "delete", "throw", "co_await", "co_return", "co_yield",
))

INVENTORY_LINE_RE = re.compile(r"^([A-Za-z_]\w*)\s*:\s*(.*)$")


def blank_preprocessor(stripped):
    """Blanks #directives (with their backslash continuations) so macro
    bodies — CKNN_CHECK's own abort() above all — are never scanned."""
    lines = stripped.split("\n")
    i = 0
    while i < len(lines):
        if lines[i].lstrip().startswith("#"):
            while True:
                continued = lines[i].rstrip().endswith("\\")
                lines[i] = ""
                if not continued or i + 1 >= len(lines):
                    break
                i += 1
        i += 1
    return "\n".join(lines)


def match_paren(text, open_at):
    """Offset just past the `)` matching `(` at `open_at`, or -1."""
    depth = 0
    for k in range(open_at, len(text)):
        if text[k] == "(":
            depth += 1
        elif text[k] == ")":
            depth -= 1
            if depth == 0:
                return k + 1
    return -1


def match_brace(text, open_at):
    """Offset just past the `}` matching `{` at `open_at`, or len(text)."""
    depth = 0
    for k in range(open_at, len(text)):
        if text[k] == "{":
            depth += 1
        elif text[k] == "}":
            depth -= 1
            if depth == 0:
                return k + 1
    return len(text)


def extract_functions(code):
    """Function definitions in preprocessed `code`.

    Yields (name, header_offset, body_start, body_end). Grep-grade: a
    `name(args...)` followed — past qualifiers, attribute macros, and a
    ctor-initializer list — by `{` opens a definition; `;` first means a
    declaration. Control-flow keywords are excluded.
    """
    out = []
    for m in CALL_RE.finditer(code):
        name = m.group(1)
        if name in NON_CALL_NAMES:
            continue
        open_paren = code.find("(", m.end(1))
        after = match_paren(code, open_paren)
        if after < 0:
            continue
        k = after
        while k < len(code):
            c = code[k]
            if c == ";":
                k = -1
                break
            if c == "{":
                break
            if c == "(":  # Attribute macro / ctor-initializer argument.
                k = match_paren(code, k)
                if k < 0:
                    break
                continue
            # `= default/delete`, an enclosing scope closing, or a bare `)`
            # (the "call" was a subexpression like `if (x.empty()) {`).
            if c in "}=)":
                k = -1
                break
            k += 1
        if k is None or k < 0 or k >= len(code):
            continue
        body_end = match_brace(code, k)
        out.append((name, m.start(1), k, body_end))
    return out


def build_symbol_table(files):
    """Names declared anywhere with a Status/Result return type."""
    names = set()
    for _, code in files.items():
        for m in STATUS_DECL_RE.finditer(code):
            names.add(m.group(1))
    return names


def line_of(code, offset):
    return code.count("\n", 0, offset) + 1


class FileScan:
    """One file's stripped code, raw lines, and function extents."""

    def __init__(self, path, text):
        self.path = path
        self.raw_lines = text.splitlines()
        self.code = blank_preprocessor(strip_comments_and_strings(text))
        self.functions = extract_functions(self.code)

    def abort_sites(self, pattern):
        """(lineno, token) of every abort token in the file."""
        return [(line_of(self.code, m.start()), m.group(0).rstrip("( \t"))
                for m in pattern.finditer(self.code)]


def is_escaped(scan, lineno, rule, findings):
    """True when an `allow(<rule>)` escape covers `lineno`; reason-less
    escapes are reported through `findings`."""
    allowed, missing = find_allows(scan.raw_lines, lineno)
    if missing is not None:
        findings.append((scan.path, missing, "allow-missing-reason",
                         "escape comment without a reason"))
        return False
    return rule in allowed


def scan_discards(scan, status_symbols, findings, escaped_lines):
    for m in VOID_CAST_RE.finditer(scan.code):
        name = m.group(2)
        if name not in status_symbols:
            continue
        lineno = line_of(scan.code, m.start())
        if is_escaped(scan, lineno, "status-discard", findings):
            escaped_lines.add((scan.path, lineno))
            continue
        findings.append((scan.path, lineno, "status-discard",
                         f"'(void){name}(...)': {RULES['status-discard']}"))


def client_regions(scan, rel):
    """Byte ranges of `scan.code` that are client-reachable: the whole
    file under src/serve//tools/, else every Try*/Submit* body."""
    posix = rel.replace(os.sep, "/")
    if any(posix.startswith(d + "/") for d in CLIENT_DIRS):
        return [(0, len(scan.code))]
    return [(body_start, body_end)
            for name, _, body_start, body_end in scan.functions
            if re.fullmatch(r"(?:Try|Submit)[A-Z]\w*|Submit", name)]


def scan_client_aborts(scan, rel, findings, escaped_lines):
    regions = client_regions(scan, rel)
    if not regions:
        return
    for m in CLIENT_ABORT_RE.finditer(scan.code):
        if not any(lo <= m.start() < hi for lo, hi in regions):
            continue
        lineno = line_of(scan.code, m.start())
        token = m.group(0).rstrip("( \t")
        if is_escaped(scan, lineno, "abort", findings):
            escaped_lines.add((scan.path, lineno))
            continue
        findings.append((scan.path, lineno, "client-abort",
                         f"'{token}': {RULES['client-abort']}"))


def build_call_graph(scans):
    """name -> set of callee names, plus name -> [(path, lineno, token)]
    un-escaped abort sites per function (inline `allow(abort)` escapes are
    honored here too — an inline-reasoned site needs no inventory entry)."""
    graph = {}
    aborts = {}
    defined = set()
    escapes_used = []
    for scan in scans:
        for name, _, body_start, body_end in scan.functions:
            defined.add(name)
            body = scan.code[body_start:body_end]
            callees = graph.setdefault(name, set())
            for m in CALL_RE.finditer(body):
                callee = m.group(1)
                if callee not in NON_CALL_NAMES and callee != name:
                    callees.add(callee)
            for m in ABORT_RE.finditer(body):
                lineno = line_of(scan.code, body_start + m.start())
                token = m.group(0).rstrip("( \t")
                allowed, missing = find_allows(scan.raw_lines, lineno)
                if missing is None and "abort" in allowed:
                    escapes_used.append((scan.path, lineno))
                    continue
                aborts.setdefault(name, []).append(
                    (scan.path, lineno, token))
    return graph, aborts, defined, escapes_used


def reachable_from(graph, defined, roots):
    seen = set()
    stack = [r for r in roots if r in defined]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        for callee in graph.get(name, ()):
            if callee in defined and callee not in seen:
                stack.append(callee)
    return seen


def load_inventory(path):
    """{name: reason} from abort_inventory.txt; malformed lines error."""
    entries = {}
    errors = []
    if not os.path.isfile(path):
        return entries, errors
    with open(path, "r", encoding="utf-8") as f:
        for i, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            m = INVENTORY_LINE_RE.match(line)
            if not m or not m.group(2).strip():
                errors.append((path, i, "abort-reach",
                               "malformed inventory line (want "
                               "'FunctionName: reason')"))
                continue
            entries[m.group(1)] = i
    return entries, errors


def scan_reachability(scans, inventory_path, findings):
    graph, aborts, defined, _ = build_call_graph(scans)
    reached = reachable_from(graph, defined, ROOTS)
    inventory, errors = load_inventory(inventory_path)
    findings.extend(errors)
    flagged = set()
    for name in sorted(reached & set(aborts)):
        if name in inventory:
            flagged.add(name)
            continue
        for path, lineno, token in aborts[name]:
            findings.append((path, lineno, "abort-reach",
                             f"'{token}' in '{name}' (reachable from "
                             f"{'/'.join(ROOTS)}): {RULES['abort-reach']}"))
    for name, inv_line in sorted(inventory.items()):
        if name not in flagged:
            findings.append((inventory_path, inv_line, "stale-inventory",
                             f"'{name}': {RULES['stale-inventory']}"))


def scan_stale_escapes(scan, escaped_lines, findings):
    """`allow(status-discard)`/`allow(abort)` escapes that matched nothing
    rot-check, mirroring determinism_lint's stale-allow rule."""
    for i, raw in enumerate(scan.raw_lines, start=1):
        m = ALLOW_RE.search(raw)
        if not m or m.group(1) not in ("status-discard", "abort"):
            continue
        if not m.group(2).strip():
            continue  # Reported as allow-missing-reason by the scans.
        if (scan.path, i) in escaped_lines or \
                (scan.path, i + 1) in escaped_lines:
            continue
        findings.append((scan.path, i, "stale-allow",
                         f"escape for '{m.group(1)}' matches no finding "
                         "on this or the next line"))


def iter_sources(root, rel_dirs):
    for rel in rel_dirs:
        base = os.path.join(root, rel)
        if not os.path.isdir(base):
            continue
        for dirpath, _, files in os.walk(base):
            for name in sorted(files):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name)


def load_scans(paths):
    scans = []
    for path in paths:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            scans.append(FileScan(path, f.read()))
    return scans


def lint_scans(scans, root, inventory_path):
    """All findings over a file set, as (path, lineno, rule, message)."""
    findings = []
    escaped_lines = set()
    status_symbols = build_symbol_table(
        {s.path: s.code for s in scans})
    for scan in scans:
        rel = os.path.relpath(scan.path, root)
        scan_discards(scan, status_symbols, findings, escaped_lines)
        scan_client_aborts(scan, rel, findings, escaped_lines)
    scan_reachability(scans, inventory_path, findings)
    # Inline abort escapes consumed by the reachability pass also count as
    # used (they suppress inventory entries).
    _, _, _, reach_escapes = build_call_graph(scans)
    escaped_lines.update(reach_escapes)
    for scan in scans:
        scan_stale_escapes(scan, escaped_lines, findings)
    return sorted(set(findings))


def run_tree(root, rel_dirs, inventory_path):
    scans = load_scans(iter_sources(root, rel_dirs))
    total = 0
    for path, lineno, rule, message in lint_scans(scans, root,
                                                  inventory_path):
        rel = os.path.relpath(path, root)
        print(f"{rel}:{lineno}: [{rule}] {message}")
        total += 1
    if total:
        print(f"status_lint: {total} finding(s)", file=sys.stderr)
        return 1
    return 0


def run_self_test(fixtures_dir):
    """Per-fixture run: every fixture is linted as a client-reachable file
    (placed under a virtual src/serve/) with an empty inventory, and its
    findings must equal its LINT-EXPECT markers."""
    failures = 0
    checked = 0
    for name in sorted(os.listdir(fixtures_dir)):
        if not name.endswith(SOURCE_EXTS):
            continue
        path = os.path.join(fixtures_dir, name)
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        expected = []
        for i, raw in enumerate(text.splitlines(), start=1):
            for m in EXPECT_RE.finditer(raw):
                expected.append((i, m.group(1)))
        scan = FileScan(os.path.join("src/serve", name), text)
        got = [(lineno, rule)
               for _, lineno, rule, _ in lint_scans(
                   [scan], ".", os.path.join(fixtures_dir,
                                             "no_such_inventory.txt"))]
        if sorted(got) != sorted(expected):
            failures += 1
            print(f"SELF-TEST FAIL {name}:", file=sys.stderr)
            print(f"  expected: {sorted(expected)}", file=sys.stderr)
            print(f"  got:      {sorted(got)}", file=sys.stderr)
        else:
            checked += 1
    if failures:
        print(f"status_lint --self-test: {failures} fixture(s) failed",
              file=sys.stderr)
        return 1
    if checked == 0:
        print("status_lint --self-test: no fixtures found", file=sys.stderr)
        return 2
    print(f"status_lint --self-test: {checked} fixtures OK")
    return 0


def run_dump_reach(root, rel_dirs):
    """Prints the reachable abort inventory (debug aid for authoring
    abort_inventory.txt)."""
    scans = load_scans(iter_sources(root, rel_dirs))
    graph, aborts, defined, _ = build_call_graph(scans)
    reached = reachable_from(graph, defined, ROOTS)
    for name in sorted(reached & set(aborts)):
        sites = ", ".join(
            f"{os.path.relpath(p, root)}:{ln}" for p, ln, _ in aborts[name])
        print(f"{name}: {sites}")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="cknn status-discipline lint "
                    "(see docs/static_analysis.md)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this "
                             "script)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the status fixtures and check "
                             "LINT-EXPECT markers")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--dump-reach", action="store_true",
                        help="print the reachable abort-carrying functions "
                             "with their sites (inventory authoring aid)")
    parser.add_argument("paths", nargs="*",
                        help="directories to scan, relative to --root "
                             f"(default: {' '.join(DEFAULT_DIRS)})")
    args = parser.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = args.root or os.path.dirname(os.path.dirname(script_dir))
    inventory = os.path.join(script_dir, "abort_inventory.txt")

    if args.list_rules:
        for rule, text in RULES.items():
            print(f"{rule}: {text}")
        return 0
    if args.self_test:
        return run_self_test(os.path.join(script_dir, "fixtures", "status"))
    if args.dump_reach:
        return run_dump_reach(root, args.paths or list(DEFAULT_DIRS))
    return run_tree(root, args.paths or list(DEFAULT_DIRS), inventory)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Determinism lint: bans result-order-sensitive patterns in the hot tree.

The repo's standing guarantee (docs/trace_format.md, the conformance CTest
label) is that OVH/IMA/GMA produce byte-identical results under any shard,
pipeline, and tile configuration.  That guarantee dies quietly when result
paths pick up a dependence on something the language does not order:

  unordered-iter   iterating a std::unordered_map / std::unordered_set
                   (range-for or .begin() walks).  Hash-table iteration
                   order is unspecified and changes across libstdc++
                   versions, hash seeds, and insertion histories.
  pointer-key      std::map / std::set keyed by a pointer type.  The
                   iteration order is the allocator's address order, which
                   ASLR re-rolls every run.
  wall-clock       reading std::chrono clocks / time() / clock_gettime()
                   outside the metrics layer.  Result paths must depend on
                   the simulated timestamp, never on wall time.
  raw-rand         rand() / srand() / random() / std::random_device.  All
                   randomness flows through the seeded cknn::Rng.

Scanned by default: src/core, src/graph, src/spatial (the result-producing
layers).  src/sim (metrics/stopwatches) and src/serve (latency timestamps)
are deliberately out of scope for wall-clock reads.

A finding is suppressed with an escape comment carrying a reason, on the
flagged line or the line directly above it:

    // cknn-lint: allow(unordered-iter) commutative sum, order-free

An escape without a reason is itself an error (allow-missing-reason).

Self-tests: `--self-test` lints every fixture under scripts/lint/fixtures/
and compares the findings against the `LINT-EXPECT: <rule>` markers in the
fixture source (good_* fixtures carry no markers and must come out clean).

Exit code: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

RULES = {
    "unordered-iter":
        "iteration over an unordered container (order is unspecified); "
        "iterate a sorted copy or an ordered sibling, or escape with a "
        "reason why order cannot reach results",
    "pointer-key":
        "ordered container keyed by a pointer (iteration order is address "
        "order, re-rolled by ASLR every run)",
    "wall-clock":
        "wall-clock read in a result path (results must depend on the "
        "simulated timestamp only; metrics live in src/sim)",
    "raw-rand":
        "unseeded randomness (use the seeded cknn::Rng so runs replay)",
}

DEFAULT_DIRS = ("src/core", "src/graph", "src/spatial")
SOURCE_EXTS = (".h", ".cc", ".cpp", ".hpp")

ALLOW_RE = re.compile(r"//\s*cknn-lint:\s*allow\(([a-z-]+)\)\s*(.*)$")
EXPECT_RE = re.compile(r"LINT-EXPECT:\s*([a-z-]+)")

# Declarations of unordered containers: `std::unordered_map<K, V> name`,
# members, params, and nested element types (vector<unordered_map<...>>).
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<")
DECL_NAME_RE = re.compile(r"[&*\s]([A-Za-z_]\w*)\s*(?:;|=|\{|\)|,|$)")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;]*?):([^;]*)\)\s*(?:\{|[^;{]*;|$)")
BEGIN_CALL_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:\.|->)\s*c?begin\s*\(")
POINTER_KEY_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:map|set|multimap|multiset)\s*<"
    r"\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*")
WALL_CLOCK_RE = re.compile(
    r"std\s*::\s*chrono\b|::\s*now\s*\(|\bgettimeofday\s*\(|"
    r"\bclock_gettime\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0|&)|"
    r"\bclock\s*\(\s*\)")
RAW_RAND_RE = re.compile(
    r"\brand\s*\(\s*\)|\bsrand\s*\(|\brandom\s*\(\s*\)|"
    r"std\s*::\s*random_device\b|\brand_r\s*\(")


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure.

    Keeps every newline so findings carry real line numbers; replaced
    regions become spaces so column-free regexes cannot match into them.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j, n - 1)
            out.append(" " * (j + 1 - i))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def unordered_symbols(stripped):
    """Names declared (or bound) with a type mentioning unordered_*.

    Includes struct members and function parameters, so iterating
    `it->second.queries` is caught through its final component. Blunt by
    design: a false positive costs one escape comment with a reason.
    """
    names = set()
    for line in stripped.splitlines():
        if not UNORDERED_DECL_RE.search(line):
            continue
        # The declared name follows the closing angle bracket of the
        # (possibly nested) template argument list.
        depth = 0
        start = line.find("<", UNORDERED_DECL_RE.search(line).start())
        tail_at = None
        for k in range(start, len(line)):
            if line[k] == "<":
                depth += 1
            elif line[k] == ">":
                depth -= 1
                if depth == 0:
                    tail_at = k + 1
                    break
        if tail_at is None:
            continue
        # An outer wrapper (vector<unordered_map<...>> il_) closes with
        # more '>'s; skip them before looking for the name.
        tail = line[tail_at:].lstrip("> \t")
        m = re.match(r"[&*\s]*([A-Za-z_]\w*)", tail)
        if m:
            names.add(m.group(1))
    return names


def target_names(expr):
    """Base and final identifiers of a range-for target expression."""
    expr = expr.strip()
    names = []
    m = re.match(r"[\s(*&]*([A-Za-z_]\w*)", expr)
    if m:
        names.append(m.group(1))
    parts = re.findall(r"[A-Za-z_]\w*", expr)
    if parts:
        names.append(parts[-1])
    return names


def find_allows(raw_lines, lineno):
    """Escape comments that apply to 1-indexed `lineno` (same or previous
    line). Returns (rules, reason_missing_line)."""
    rules = set()
    missing = None
    for cand in (lineno, lineno - 1):
        if 1 <= cand <= len(raw_lines):
            m = ALLOW_RE.search(raw_lines[cand - 1])
            if m:
                if m.group(2).strip():
                    rules.add(m.group(1))
                else:
                    missing = cand
    return rules, missing


def sibling_header_symbols(path):
    """Unordered-container members declared in the paired header.

    A .cc file iterating `queries_` sees only the header's declaration, so
    the per-file symbol table alone would miss every member iteration.
    """
    base, ext = os.path.splitext(path)
    if ext not in (".cc", ".cpp"):
        return set()
    names = set()
    for header_ext in (".h", ".hpp"):
        header = base + header_ext
        if os.path.isfile(header):
            with open(header, "r", encoding="utf-8", errors="replace") as f:
                names |= unordered_symbols(strip_comments_and_strings(
                    f.read()))
    return names


def lint_file(path, text=None):
    """Returns a list of (lineno, rule, message) findings for one file."""
    if text is None:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    raw_lines = text.splitlines()
    stripped = strip_comments_and_strings(text)
    stripped_lines = stripped.splitlines()
    symbols = unordered_symbols(stripped) | sibling_header_symbols(path)

    hits = []  # (lineno, rule, detail)
    for i, line in enumerate(stripped_lines, start=1):
        for m in RANGE_FOR_RE.finditer(line):
            for name in target_names(m.group(2)):
                if name in symbols:
                    hits.append((i, "unordered-iter",
                                 "range-for over unordered container "
                                 f"'{name}'"))
                    break
        for m in BEGIN_CALL_RE.finditer(line):
            if m.group(1) in symbols:
                hits.append((i, "unordered-iter",
                             "iterator walk over unordered container "
                             f"'{m.group(1)}'"))
        if POINTER_KEY_RE.search(line):
            hits.append((i, "pointer-key", "pointer-keyed ordered container"))
        if WALL_CLOCK_RE.search(line):
            hits.append((i, "wall-clock", "wall-clock read"))
        if RAW_RAND_RE.search(line):
            hits.append((i, "raw-rand", "unseeded randomness"))

    findings = []
    for lineno, rule, detail in hits:
        allowed, missing = find_allows(raw_lines, lineno)
        if missing is not None:
            findings.append((lineno, "allow-missing-reason",
                             "escape comment without a reason"))
            continue
        if rule in allowed:
            continue
        findings.append((lineno, rule, f"{detail}: {RULES[rule]}"))
    # An allow comment that never matched a finding is stale; flag it so
    # escapes cannot rot in place after the code under them is fixed.
    flagged_lines = {ln for ln, _, _ in hits}
    for i, raw in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(raw)
        # Rot-check only this lint's own rules: `allow(abort)` and
        # `allow(status-discard)` escapes in src/core belong to
        # status_lint.py, which runs its own stale-allow pass over them.
        if m and m.group(1) in RULES and m.group(2).strip():
            if i not in flagged_lines and (i + 1) not in flagged_lines:
                findings.append((i, "stale-allow",
                                 f"escape for '{m.group(1)}' matches no "
                                 "finding on this or the next line"))
    return sorted(set(findings))


def iter_sources(root, rel_dirs):
    for rel in rel_dirs:
        base = os.path.join(root, rel)
        if not os.path.isdir(base):
            continue
        for dirpath, _, files in os.walk(base):
            for name in sorted(files):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name)


def run_tree(root, rel_dirs):
    total = 0
    for path in iter_sources(root, rel_dirs):
        for lineno, rule, message in lint_file(path):
            rel = os.path.relpath(path, root)
            print(f"{rel}:{lineno}: [{rule}] {message}")
            total += 1
    if total:
        print(f"determinism_lint: {total} finding(s)", file=sys.stderr)
        return 1
    return 0


def run_self_test(fixtures_dir):
    failures = 0
    checked = 0
    for name in sorted(os.listdir(fixtures_dir)):
        if not name.endswith(SOURCE_EXTS):
            continue
        path = os.path.join(fixtures_dir, name)
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        expected = []
        for i, raw in enumerate(text.splitlines(), start=1):
            for m in EXPECT_RE.finditer(raw):
                expected.append((i, m.group(1)))
        got = [(lineno, rule) for lineno, rule, _ in lint_file(path, text)]
        if sorted(got) != sorted(expected):
            failures += 1
            print(f"SELF-TEST FAIL {name}:", file=sys.stderr)
            print(f"  expected: {sorted(expected)}", file=sys.stderr)
            print(f"  got:      {sorted(got)}", file=sys.stderr)
        else:
            checked += 1
    if failures:
        print(f"determinism_lint --self-test: {failures} fixture(s) failed",
              file=sys.stderr)
        return 1
    if checked == 0:
        print("determinism_lint --self-test: no fixtures found",
              file=sys.stderr)
        return 2
    print(f"determinism_lint --self-test: {checked} fixtures OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="cknn determinism lint (see docs/static_analysis.md)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this "
                             "script)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the fixtures and check LINT-EXPECT "
                             "markers")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="directories to scan, relative to --root "
                             f"(default: {' '.join(DEFAULT_DIRS)})")
    args = parser.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = args.root or os.path.dirname(os.path.dirname(script_dir))

    if args.list_rules:
        for rule, text in RULES.items():
            print(f"{rule}: {text}")
        return 0
    if args.self_test:
        return run_self_test(os.path.join(script_dir, "fixtures"))
    return run_tree(root, args.paths or list(DEFAULT_DIRS))


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

# Shared CMake-configure helper, sourced by verify.sh and bench.sh.
#
# Passes the dependency-flavor knobs through to CMake and defends against
# configure drift: a stale build/ whose cache was configured for the other
# GoogleTest/Benchmark lane would otherwise be silently reused (CMake keeps
# cached option values unless told otherwise), so a "system" run could gate
# on the shim or vice versa. When a requested knob disagrees with the cached
# value, the cache is dropped and the build directory re-configured.

CKNN_FLAVOR_KNOBS=(
  CKNN_REQUIRE_SYSTEM_GTEST
  CKNN_FORCE_GTEST_SHIM
  CKNN_REQUIRE_SYSTEM_BENCHMARK
  CKNN_FORCE_BENCHMARK_SHIM
)

# Normalizes a CMake-style boolean to ON/OFF (empty/unset counts as OFF).
cknn_bool() {
  case "$(printf '%s' "${1:-}" | tr '[:lower:]' '[:upper:]')" in
    1|ON|TRUE|YES|Y) echo ON ;;
    *) echo OFF ;;
  esac
}

# cknn_configure <build_dir> <source_dir> [extra cmake args...]
cknn_configure() {
  local build_dir="$1" source_dir="$2"
  shift 2

  local -a args=()
  local knob value
  for knob in "${CKNN_FLAVOR_KNOBS[@]}"; do
    value="${!knob:-}"
    [[ -n "${value}" ]] && args+=("-D${knob}=$(cknn_bool "${value}")")
  done

  local cache="${build_dir}/CMakeCache.txt"
  if [[ -f "${cache}" ]]; then
    for knob in "${CKNN_FLAVOR_KNOBS[@]}"; do
      value="${!knob:-}"
      if [[ -z "${value}" ]]; then
        case "${knob}" in
          # An unset FORCE knob means OFF: a cache left forced to the shim
          # lane must not silently satisfy a default (system-lane) run.
          CKNN_FORCE_*) value=OFF ;;
          # An unset REQUIRE knob means "no opinion": a standing guard in
          # the cache never flips the lane, it only makes configure
          # stricter, so leave it alone.
          *) continue ;;
        esac
      fi
      local cached
      cached="$(sed -n "s/^${knob}:[A-Z]*=//p" "${cache}" | head -n1)"
      if [[ "$(cknn_bool "${value}")" != "$(cknn_bool "${cached}")" ]]; then
        echo "cknn: ${knob}=$(cknn_bool "${value}") disagrees with cached" \
             "'$(cknn_bool "${cached}")' in ${cache}; re-configuring" >&2
        rm -rf "${cache}" "${build_dir}/CMakeFiles"
        break
      fi
    done
  fi

  cmake -B "${build_dir}" -S "${source_dir}" \
    ${args[@]+"${args[@]}"} "$@"
}

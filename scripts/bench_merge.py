#!/usr/bin/env python3
"""Merge per-figure Google Benchmark JSON into one BENCH_results.json.

Usage:
    bench_merge.py --out BENCH_results.json --scale quick [--seed 42] \
        build/bench_json/*.json

Each input file is one figure's ``--benchmark_format=json`` output (real
Google Benchmark and the vendored shim emit the same shape); the figure
name is the file's basename without the ``.json`` suffix (a leading
``bench_`` is stripped). Every successful benchmark entry becomes one
record with the schema

    {figure, algo, sec_per_ts, max_sec, cpu_sec_per_ts, mem_kb, scale, seed}

plus ``name``/``args`` for traceability, and — for figures that report
counters beyond the standard set (e.g. ``fig_tiling``'s
``legacy_clone_mem_kb``) — an ``extras`` object carrying every
non-standard numeric counter verbatim. ``sec_per_ts`` is wall time;
``cpu_sec_per_ts`` is process CPU time (all threads), recorded separately
so sharded/pipelined figures do not conflate the two (null for captures
made before the counter existed). The merge fails loudly — nonzero
exit, message on stderr — on malformed input, a duplicate figure name, or
an entry missing the mandatory ``sec_per_ts`` counter, so a broken capture
cannot masquerade as a recorded result. Entries that skipped with an error
(e.g. paper-scale-only points at quick scale) are counted but not recorded.
"""

import argparse
import json
import os
import sys

# Entry keys that are benchmark-library bookkeeping or already-mapped
# standard counters; every OTHER numeric key is a figure-specific user
# counter and is preserved under ``extras``.
_STANDARD_ENTRY_KEYS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit", "label",
    "error_occurred", "error_message", "skipped", "skip_message",
    "family_index", "per_family_instance_index", "aggregate_name",
    "aggregate_unit", "items_per_second", "bytes_per_second",
    "sec_per_ts", "max_sec", "cpu_sec_per_ts", "mem_kb",
}

# Name segments that are run modifiers, not benchmark arguments.
_MODIFIER_KEYS = {
    "iterations",
    "repeats",
    "min_time",
    "min_warmup_time",
    "threads",
    "real_time",
    "process_time",
    "manual_time",
}


def fail(message):
    print(f"bench_merge: error: {message}", file=sys.stderr)
    sys.exit(1)


def figure_of(path):
    stem = os.path.basename(path)
    if stem.endswith(".json"):
        stem = stem[: -len(".json")]
    if stem.startswith("bench_"):
        stem = stem[len("bench_"):]
    return stem


def args_of(name):
    """Extracts the benchmark arguments from an instance name like
    ``Fig13a/algo:2/N_thousands:10/iterations:1/manual_time``.

    An un-named (positional) argument is keyed ``argN`` where N is its
    position among all arguments, named or not, so mixed registrations
    keep stable keys."""
    args = {}
    position = 0
    for part in name.split("/")[1:]:
        key, sep, raw = part.partition(":")
        if sep:
            if key in _MODIFIER_KEYS:
                continue
            value = raw
        else:  # Positional (un-named) argument.
            if part in _MODIFIER_KEYS:
                continue
            key, value = f"arg{position}", part
        try:
            args[key] = int(value)
        except ValueError:
            try:
                args[key] = float(value)
            except ValueError:
                args[key] = value
        position += 1
    return args


def load_entries(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        fail(f"{path}: malformed benchmark JSON: {exc}")
    entries = doc.get("benchmarks") if isinstance(doc, dict) else None
    if not isinstance(entries, list):
        fail(f"{path}: no 'benchmarks' array (not benchmark JSON output?)")
    return entries


def main(argv):
    parser = argparse.ArgumentParser(
        description="Merge per-figure benchmark JSON into BENCH_results.json")
    parser.add_argument("--out", required=True, help="merged output path")
    parser.add_argument("--scale", required=True,
                        help="capture scale (smoke|quick|paper)")
    parser.add_argument("--seed", type=int, default=42,
                        help="workload master seed the suite ran with")
    parser.add_argument("--append", action="store_true",
                        help="merge into an existing --out file: records of "
                             "re-captured figures are replaced, records of "
                             "other figures are kept (scale and seed must "
                             "match; skipped_entries becomes cumulative)")
    parser.add_argument("inputs", nargs="+", help="per-figure JSON files")
    ns = parser.parse_args(argv)

    results = []
    skipped = 0
    seen = {}
    if ns.append and os.path.exists(ns.out):
        try:
            with open(ns.out, encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, ValueError) as exc:
            fail(f"{ns.out}: cannot append to malformed results file: {exc}")
        if existing.get("scale") != ns.scale or existing.get("seed") != ns.seed:
            fail(f"{ns.out}: append scale/seed mismatch: file has "
                 f"{existing.get('scale')}/{existing.get('seed')}, run is "
                 f"{ns.scale}/{ns.seed}")
        recaptured = {figure_of(path) for path in ns.inputs}
        for record in existing.get("results", []):
            figure = record.get("figure")
            if figure in recaptured:
                continue  # Replaced by this run.
            results.append(record)
            seen.setdefault(figure, ns.out)
        for figure in existing.get("figures", []):
            # Keep even figures whose entries all skipped (no records).
            if figure not in recaptured:
                seen.setdefault(figure, ns.out)
        skipped = int(existing.get("skipped_entries", 0))
    for path in ns.inputs:
        figure = figure_of(path)
        if figure in seen:
            fail(f"duplicate figure name '{figure}' "
                 f"({seen[figure]} and {path})")
        seen[figure] = path
        recorded = 0
        for entry in load_entries(path):
            if not isinstance(entry, dict):
                fail(f"{path}: non-object entry in 'benchmarks'")
            if entry.get("run_type") == "aggregate":
                continue
            name = entry.get("name", "<unnamed>")
            if entry.get("error_occurred") or entry.get("skipped"):
                skipped += 1
                continue
            if "sec_per_ts" not in entry:
                fail(f"{path}: benchmark '{name}' is missing the sec_per_ts "
                     "counter; every figure must report it (bench_common.h "
                     "RunAndReport)")
            record = {
                "figure": figure,
                "algo": entry.get("label", "<unlabeled>"),
                "sec_per_ts": entry["sec_per_ts"],
                "max_sec": entry.get("max_sec"),
                "cpu_sec_per_ts": entry.get("cpu_sec_per_ts"),
                "mem_kb": entry.get("mem_kb"),
                "scale": ns.scale,
                "seed": ns.seed,
                "name": name,
                "args": args_of(name),
            }
            extras = {
                key: value
                for key, value in entry.items()
                if key not in _STANDARD_ENTRY_KEYS
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
            }
            if extras:
                record["extras"] = extras
            results.append(record)
            recorded += 1
        if recorded == 0:
            print(f"bench_merge: warning: {path}: no successful benchmark "
                  "entries", file=sys.stderr)
    if not results:
        fail("no successful benchmark entries in any input")

    results.sort(key=lambda r: (r["figure"], r["name"]))
    document = {
        "schema": ["figure", "algo", "sec_per_ts", "max_sec",
                   "cpu_sec_per_ts", "mem_kb", "scale", "seed"],
        "scale": ns.scale,
        "seed": ns.seed,
        "figures": sorted(seen),
        "skipped_entries": skipped,
        "results": results,
    }
    with open(ns.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"bench_merge: wrote {len(results)} results from {len(seen)} "
          f"figures to {ns.out} ({skipped} skipped entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

// cknn_loadgen — bursty-arrival load driver for the serving front end.
//
// Replays the million-entity scenario of docs/serving.md: installs N
// objects and Q queries, then has `--producers` threads push Table-2
// random-walk updates through a ServingFrontEnd in timed bursts (every
// `--heavy-every`-th burst is a `--heavy-factor`x arrival spike) and
// reports sustained updates/sec plus submit-to-visible latency
// percentiles.
//
//   cknn_loadgen --objects=1000000 --queries=100000 --k=10
//                --producers=4 --bursts=8

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/serve/loadgen.h"
#include "tools/flag_util.h"

namespace cknn {
namespace {

using tools::ParseCount;
using tools::ParseDouble;
using tools::ParseFlag;
using tools::ParsePositiveInt;
using tools::ParseSize;
using tools::RejectValue;
using tools::RequireValue;

void PrintUsage() {
  std::printf(
      "usage: cknn_loadgen [options]\n"
      "  --objects=N           object cardinality (default 1000000)\n"
      "  --queries=N           query cardinality (default 100000)\n"
      "  --k=N                 neighbors per query (default 10)\n"
      "  --algo=ima|gma|ovh    algorithm (default ima)\n"
      "  --edges=N             generated network size (default 10000)\n"
      "  --shards=N            worker shards (default 1)\n"
      "  --pipeline=D          ingest pipeline depth, 1 or 2 (default 2)\n"
      "  --tiles=N             weight-storage tiles (default 1)\n"
      "  --producers=N         submitting threads (default 4)\n"
      "  --bursts=N            timed submission windows (default 8)\n"
      "  --heavy-every=N       every Nth burst is an arrival spike\n"
      "                        (default 4; 0 disables spikes)\n"
      "  --heavy-factor=N      spike size in workload steps (default 4)\n"
      "  --queue-capacity=N    submission queue bound (default 65536)\n"
      "  --drop                drop on a full queue (TrySubmit admission\n"
      "                        control) instead of blocking (Submit\n"
      "                        back-pressure, the default)\n"
      "  --object-agility=F    fraction of objects moving per step (0.10)\n"
      "  --query-agility=F     fraction of queries moving per step (0.10)\n"
      "  --edge-agility=F      fraction of edges updated per step (0.04)\n"
      "  --seed=N              master seed (default 42)\n");
}

bool ParseOptions(int argc, char** argv, serve::LoadScenarioConfig* opt) {
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--objects", &v)) {
      if (!ParseSize("--objects", v, &opt->num_objects)) return false;
    } else if (ParseFlag(argv[i], "--queries", &v)) {
      if (!ParseSize("--queries", v, &opt->num_queries)) return false;
    } else if (ParseFlag(argv[i], "--k", &v)) {
      if (!ParsePositiveInt("--k", v, &opt->k)) return false;
    } else if (ParseFlag(argv[i], "--algo", &v)) {
      if (!RequireValue("--algo", v)) return false;
      if (std::strcmp(v, "ima") == 0) {
        opt->algorithm = Algorithm::kIma;
      } else if (std::strcmp(v, "gma") == 0) {
        opt->algorithm = Algorithm::kGma;
      } else if (std::strcmp(v, "ovh") == 0) {
        opt->algorithm = Algorithm::kOvh;
      } else {
        std::fprintf(stderr, "unknown algorithm: %s\n\n", v);
        return false;
      }
    } else if (ParseFlag(argv[i], "--edges", &v)) {
      if (!ParseSize("--edges", v, &opt->network.target_edges)) return false;
    } else if (ParseFlag(argv[i], "--shards", &v)) {
      if (!ParsePositiveInt("--shards", v, &opt->shards)) return false;
    } else if (ParseFlag(argv[i], "--pipeline", &v)) {
      if (!ParsePositiveInt("--pipeline", v, &opt->pipeline_depth)) {
        return false;
      }
      if (opt->pipeline_depth > 2) {
        std::fprintf(stderr, "--pipeline depth must be 1 or 2\n\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--tiles", &v)) {
      if (!ParsePositiveInt("--tiles", v, &opt->tiles)) return false;
    } else if (ParseFlag(argv[i], "--producers", &v)) {
      if (!ParsePositiveInt("--producers", v, &opt->producers)) return false;
    } else if (ParseFlag(argv[i], "--bursts", &v)) {
      if (!ParsePositiveInt("--bursts", v, &opt->bursts)) return false;
    } else if (ParseFlag(argv[i], "--heavy-every", &v)) {
      std::uint64_t every = 0;
      if (!ParseCount("--heavy-every", v, &every)) return false;
      opt->heavy_every = static_cast<int>(every);
    } else if (ParseFlag(argv[i], "--heavy-factor", &v)) {
      if (!ParsePositiveInt("--heavy-factor", v, &opt->heavy_factor)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--queue-capacity", &v)) {
      if (!ParseSize("--queue-capacity", v, &opt->queue_capacity)) {
        return false;
      }
      if (opt->queue_capacity == 0) {
        std::fprintf(stderr, "--queue-capacity must be >= 1\n\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--drop", &v)) {
      if (!RejectValue("--drop", v)) return false;
      opt->block_on_full = false;
    } else if (ParseFlag(argv[i], "--object-agility", &v)) {
      if (!ParseDouble("--object-agility", v, &opt->object_agility)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--query-agility", &v)) {
      if (!ParseDouble("--query-agility", v, &opt->query_agility)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--edge-agility", &v)) {
      if (!ParseDouble("--edge-agility", v, &opt->edge_agility)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      if (!ParseCount("--seed", v, &opt->seed)) return false;
    } else {
      std::fprintf(stderr, "unknown option: %s\n\n", argv[i]);
      return false;
    }
  }
  return true;
}

int Run(const serve::LoadScenarioConfig& config) {
  std::fprintf(stderr,
               "running %s serving scenario: N=%zu Q=%zu k=%d "
               "producers=%d bursts=%d...\n",
               AlgorithmName(config.algorithm), config.num_objects,
               config.num_queries, config.k, config.producers,
               config.bursts);
  Result<serve::LoadScenarioReport> run = serve::RunLoadScenario(config);
  if (!run.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const serve::LoadScenarioReport& report = *run;
  const ServingStats& stats = report.stats;
  std::printf("setup: %.2f s (network + initial population)\n",
              report.setup_seconds);
  std::printf(
      "offered %llu, accepted %llu, applied %llu, dropped %llu full + "
      "%llu invalid\n",
      static_cast<unsigned long long>(report.offered),
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.applied),
      static_cast<unsigned long long>(stats.rejected_queue_full),
      static_cast<unsigned long long>(stats.rejected_invalid));
  std::printf("ticks %llu, max queue depth %zu\n",
              static_cast<unsigned long long>(stats.ticks),
              stats.max_queue_depth);
  std::printf("sustained %.0f updates/sec over %.2f s\n",
              report.updates_per_sec, report.total_seconds);
  std::printf("latency p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, max %.3f ms "
              "(%llu samples)\n",
              stats.latency_p50_sec * 1e3, stats.latency_p95_sec * 1e3,
              stats.latency_p99_sec * 1e3, stats.latency_max_sec * 1e3,
              static_cast<unsigned long long>(stats.latency_samples));
  if (report.monitor_memory_bytes > 0) {
    std::printf("monitoring memory: %.1f MB\n",
                static_cast<double>(report.monitor_memory_bytes) /
                    (1024.0 * 1024.0));
  }
  if (!report.engine_error.ok()) {
    std::fprintf(stderr,
                 "engine error during run (results above are suspect): %s\n",
                 report.engine_error.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace cknn

int main(int argc, char** argv) {
  cknn::serve::LoadScenarioConfig config;
  if (!cknn::ParseOptions(argc, argv, &config)) {
    cknn::PrintUsage();
    return 2;
  }
  return cknn::Run(config);
}

// cknn_serve — socket serving front end for the monitoring engine.
//
// Listens on a TCP port (127.0.0.1) and speaks the length-prefixed frame
// protocol of src/serve/protocol.h: clients install/move/terminate
// queries, add/move/remove objects, update edge weights, and read k-NN
// results; the ServingFrontEnd batches everything into engine ticks.
//
//   cknn_serve --port=0 --edges=10000 --algo=ima
//
// --port=0 binds an ephemeral port and prints `listening on port N`.
// A client's kShutdown frame stops the server cleanly.
//
// --selfcheck runs an in-process end-to-end exchange (install, add,
// flush, read, stats, shutdown) over a socketpair instead of serving,
// exercising the full protocol + serve-loop path; exit 0 on success.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/monitor.h"
#include "src/core/server.h"
#include "src/gen/network_gen.h"
#include "src/serve/front_end.h"
#include "src/serve/protocol.h"
#include "src/serve/serve_loop.h"
#include "tools/flag_util.h"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <thread>
#endif

namespace cknn {
namespace {

using tools::ParseCount;
using tools::ParseFlag;
using tools::ParsePositiveInt;
using tools::ParseSize;
using tools::RejectValue;
using tools::RequireValue;

struct Options {
  int port = 0;  // 0 = ephemeral (the bound port is printed).
  Algorithm algo = Algorithm::kIma;
  std::size_t edges = 10000;
  std::uint64_t seed = 1;
  int shards = 1;
  int pipeline = 2;
  int tiles = 1;
  std::size_t queue_capacity = std::size_t{1} << 16;
  bool selfcheck = false;
};

void PrintUsage() {
  std::printf(
      "usage: cknn_serve [options]\n"
      "  --port=N              TCP port to listen on (default 0 =\n"
      "                        ephemeral; the bound port is printed as\n"
      "                        'listening on port N')\n"
      "  --algo=ima|gma|ovh    algorithm (default ima)\n"
      "  --edges=N             generated network size (default 10000)\n"
      "  --seed=N              network generator seed (default 1)\n"
      "  --shards=N            worker shards (default 1)\n"
      "  --pipeline=D          ingest pipeline depth, 1 or 2 (default 2)\n"
      "  --tiles=N             weight-storage tiles (default 1)\n"
      "  --queue-capacity=N    submission queue bound; a full queue\n"
      "                        answers ResourceExhausted (default 65536)\n"
      "  --selfcheck           run an in-process protocol round trip\n"
      "                        instead of serving (exit 0 on success)\n");
}

bool ParseOptions(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--port", &v)) {
      std::uint64_t port = 0;
      if (!ParseCount("--port", v, &port)) return false;
      if (port > 65535) {
        std::fprintf(stderr, "--port must be <= 65535\n\n");
        return false;
      }
      opt->port = static_cast<int>(port);
    } else if (ParseFlag(argv[i], "--algo", &v)) {
      if (!RequireValue("--algo", v)) return false;
      if (std::strcmp(v, "ima") == 0) {
        opt->algo = Algorithm::kIma;
      } else if (std::strcmp(v, "gma") == 0) {
        opt->algo = Algorithm::kGma;
      } else if (std::strcmp(v, "ovh") == 0) {
        opt->algo = Algorithm::kOvh;
      } else {
        std::fprintf(stderr, "unknown algorithm: %s\n\n", v);
        return false;
      }
    } else if (ParseFlag(argv[i], "--edges", &v)) {
      if (!ParseSize("--edges", v, &opt->edges)) return false;
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      if (!ParseCount("--seed", v, &opt->seed)) return false;
    } else if (ParseFlag(argv[i], "--shards", &v)) {
      if (!ParsePositiveInt("--shards", v, &opt->shards)) return false;
    } else if (ParseFlag(argv[i], "--pipeline", &v)) {
      if (!ParsePositiveInt("--pipeline", v, &opt->pipeline)) return false;
      if (opt->pipeline > 2) {
        std::fprintf(stderr, "--pipeline depth must be 1 or 2\n\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--tiles", &v)) {
      if (!ParsePositiveInt("--tiles", v, &opt->tiles)) return false;
    } else if (ParseFlag(argv[i], "--queue-capacity", &v)) {
      if (!ParseSize("--queue-capacity", v, &opt->queue_capacity)) {
        return false;
      }
      if (opt->queue_capacity == 0) {
        std::fprintf(stderr, "--queue-capacity must be >= 1\n\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--selfcheck", &v)) {
      if (!RejectValue("--selfcheck", v)) return false;
      opt->selfcheck = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n\n", argv[i]);
      return false;
    }
  }
  return true;
}

#if defined(__unix__) || defined(__APPLE__)

/// Builds the engine the front end feeds: a generated network, no standing
/// population (clients install everything over the wire).
MonitoringServer MakeServer(const Options& opt) {
  NetworkGenConfig net;
  net.target_edges = opt.edges;
  net.seed = opt.seed;
  return MonitoringServer(GenerateRoadNetwork(net), opt.algo, opt.shards,
                          opt.pipeline, opt.tiles);
}

ServingConfig MakeServingConfig(const Options& opt) {
  ServingConfig config;
  config.queue_capacity = opt.queue_capacity;
  return config;
}

int RunServer(const Options& opt) {
  MonitoringServer server = MakeServer(opt);
  ServingFrontEnd front_end(&server, MakeServingConfig(opt));
  front_end.Start();

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::fprintf(stderr, "socket failed (errno %d)\n", errno);
    return 1;
  }
  int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opt.port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 16) < 0) {
    std::fprintf(stderr, "bind/listen failed (errno %d)\n", errno);
    ::close(listen_fd);
    return 1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  std::printf("listening on port %d\n", ntohs(addr.sin_port));
  std::fflush(stdout);

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  while (!stop.load()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener shut down (or failed): stop accepting.
    }
    if (stop.load()) {
      ::close(fd);
      break;
    }
    workers.emplace_back([fd, listen_fd, &front_end, &stop] {
      const serve::ServeLoopResult result =
          serve::ServeConnection(fd, &front_end);
      ::close(fd);
      if (result.shutdown) {
        stop.store(true);
        ::shutdown(listen_fd, SHUT_RDWR);  // Wake the accept loop.
      }
    });
  }
  for (std::thread& t : workers) t.join();
  ::close(listen_fd);
  front_end.Shutdown();
  std::printf("shut down cleanly\n");
  return 0;
}

/// Writes one request frame and reads its response frame.
Result<serve::Response> Transact(int fd, const serve::Message& message,
                                 serve::FrameDecoder* decoder) {
  std::vector<std::uint8_t> frame;
  serve::EncodeMessage(message, &frame);
  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("selfcheck write failed");
    }
    written += static_cast<std::size_t>(n);
  }
  while (true) {
    Result<std::optional<std::vector<std::uint8_t>>> next = decoder->Next();
    if (!next.ok()) return next.status();
    if (next->has_value()) {
      return serve::DecodeResponse((*next)->data(), (*next)->size());
    }
    std::uint8_t chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return Status::IoError("selfcheck connection closed early");
    decoder->Append(chunk, static_cast<std::size_t>(n));
  }
}

bool ExpectOk(const Result<serve::Response>& response, const char* what) {
  if (!response.ok()) {
    std::fprintf(stderr, "selfcheck %s: %s\n", what,
                 response.status().ToString().c_str());
    return false;
  }
  if (response->code != StatusCode::kOk) {
    std::fprintf(stderr, "selfcheck %s: server answered %s\n", what,
                 response->message.c_str());
    return false;
  }
  return true;
}

/// End-to-end exchange over a socketpair: the same serve loop a TCP
/// connection gets, without the flaky parts (ports, timing).
int RunSelfcheck(const Options& opt) {
  MonitoringServer server = MakeServer(opt);
  ServingFrontEnd front_end(&server, MakeServingConfig(opt));
  front_end.Start();

  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    std::fprintf(stderr, "socketpair failed (errno %d)\n", errno);
    return 1;
  }
  serve::ServeLoopResult loop_result;
  std::thread server_thread([&] {
    loop_result = serve::ServeConnection(fds[0], &front_end);
    ::close(fds[0]);
  });

  bool ok = true;
  serve::FrameDecoder decoder;
  serve::Message m;
  m.op = serve::OpCode::kInstallQuery;
  m.id = 7;
  m.edge = 0;
  m.t = 0.5;
  m.k = 2;
  ok = ok && ExpectOk(Transact(fds[1], m, &decoder), "install");
  m = serve::Message();
  m.op = serve::OpCode::kAddObject;
  m.id = 1;
  m.edge = 0;
  m.t = 0.25;
  ok = ok && ExpectOk(Transact(fds[1], m, &decoder), "add");
  m = serve::Message();
  m.op = serve::OpCode::kFlush;
  ok = ok && ExpectOk(Transact(fds[1], m, &decoder), "flush");
  m = serve::Message();
  m.op = serve::OpCode::kRead;
  m.id = 7;
  if (ok) {
    Result<serve::Response> read = Transact(fds[1], m, &decoder);
    ok = ExpectOk(read, "read");
    if (ok && read->neighbors.empty()) {
      std::fprintf(stderr, "selfcheck read: expected a neighbor\n");
      ok = false;
    }
  }
  m = serve::Message();
  m.op = serve::OpCode::kStats;
  if (ok) {
    Result<serve::Response> stats = Transact(fds[1], m, &decoder);
    ok = ExpectOk(stats, "stats");
    if (ok && stats->stats.applied < 2) {
      std::fprintf(stderr, "selfcheck stats: expected >= 2 applied\n");
      ok = false;
    }
  }
  m = serve::Message();
  m.op = serve::OpCode::kShutdown;
  ok = ok && ExpectOk(Transact(fds[1], m, &decoder), "shutdown");
  ::close(fds[1]);
  server_thread.join();
  if (ok && !loop_result.shutdown) {
    std::fprintf(stderr, "selfcheck: serve loop missed the shutdown\n");
    ok = false;
  }
  if (!ok) return 1;
  std::printf("selfcheck ok (%llu frames served)\n",
              static_cast<unsigned long long>(loop_result.frames));
  return 0;
}

#else  // !(__unix__ || __APPLE__)

int RunServer(const Options&) {
  std::fprintf(stderr, "cknn_serve requires a POSIX platform\n");
  return 1;
}

int RunSelfcheck(const Options&) {
  std::fprintf(stderr, "cknn_serve requires a POSIX platform\n");
  return 1;
}

#endif

}  // namespace
}  // namespace cknn

int main(int argc, char** argv) {
  cknn::Options options;
  if (!cknn::ParseOptions(argc, argv, &options)) {
    cknn::PrintUsage();
    return 2;
  }
  return options.selfcheck ? cknn::RunSelfcheck(options)
                           : cknn::RunServer(options);
}

// cknn_sim — command-line monitoring simulator.
//
// Runs a Table-2 style workload on a generated road network with a chosen
// algorithm and prints per-timestamp maintenance cost plus a summary, e.g.:
//
//   cknn_sim --algo=gma --edges=10000 --objects=100000 --queries=5000
//            --k=50 --timestamps=100 --edge-agility=0.04 --seed=7
//
// Use --compare to run OVH, IMA and GMA on the identical workload and
// print a comparison table.
//
// Workloads can be captured and replayed deterministically:
//
//   cknn_sim --record=run.trace --edges=500 --timestamps=20 --seed=3
//   cknn_sim --replay=run.trace --algo=ima
//   cknn_sim --replay=run.trace --conformance
//
// --conformance replays the workload through OVH, IMA and GMA in lockstep
// and verifies that every query's k-NN set is identical at every timestamp
// (exit 1 and the first divergence on failure).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/conformance.h"
#include "src/sim/experiment.h"
#include "src/trace/trace_source.h"
#include "tools/flag_util.h"

namespace cknn {
namespace {

using tools::ParseCount;
using tools::ParseDouble;
using tools::ParseFlag;
using tools::ParsePositiveInt;
using tools::ParseSize;
using tools::RejectValue;
using tools::RequireValue;

struct Options {
  Algorithm algo = Algorithm::kGma;
  bool compare = false;
  bool memory = false;
  bool conformance = false;
  std::string record_path;
  std::string replay_path;
  ExperimentSpec spec;
  /// First workload-generation flag seen (for conflict reporting): those
  /// flags have no effect when a trace defines the workload.
  const char* generator_flag = nullptr;
  bool algo_flag_used = false;
};

void PrintUsage() {
  std::printf(
      "usage: cknn_sim [options]\n"
      "  --algo=ima|gma|ovh    algorithm (default gma)\n"
      "  --compare             run all three algorithms and compare\n"
      "  --edges=N             network size (default 10000)\n"
      "  --objects=N           object cardinality (default 100000)\n"
      "  --queries=N           query cardinality (default 5000)\n"
      "  --k=N                 neighbors per query (default 50)\n"
      "  --timestamps=N        monitoring horizon (default 100)\n"
      "  --edge-agility=F      fraction of edges updated per ts (0.04)\n"
      "  --object-agility=F    fraction of objects moving per ts (0.10)\n"
      "  --query-agility=F     fraction of queries moving per ts (0.10)\n"
      "  --object-speed=F      avg edge lengths per ts (1.0)\n"
      "  --query-speed=F       avg edge lengths per ts (1.0)\n"
      "  --uniform-queries     place queries uniformly (default Gaussian)\n"
      "  --gaussian-objects    place objects Gaussian (default uniform)\n"
      "  --memory              report monitoring memory\n"
      "  --shards=N            worker shards of the monitoring server\n"
      "                        (default 1 = serial; results are independent\n"
      "                        of the shard count — see docs/sharding.md)\n"
      "  --pipeline=D          ingest pipeline depth, 1 or 2 (default 1 =\n"
      "                        synchronous ticks; 2 overlaps the next\n"
      "                        tick's generation+aggregation+validation\n"
      "                        with the current tick's maintenance —\n"
      "                        results are identical, see docs/pipeline.md)\n"
      "  --tiles=N             region tiles of the weight storage\n"
      "                        (default 1 = flat; results are independent\n"
      "                        of the tile count — see docs/tiling.md)\n"
      "  --seed=N              master seed (default 42)\n"
      "  --record=FILE         record the generated workload as a trace\n"
      "  --replay=FILE         replay a recorded trace (the network and\n"
      "                        horizon come from the file)\n"
      "  --conformance         replay through OVH, IMA and GMA in lockstep\n"
      "                        and verify identical per-timestamp k-NN\n"
      "                        results (exit 1 on divergence)\n");
}

// The flag-parsing helpers (ParseFlag, strict numerics, bare/valued flag
// rules) live in tools/flag_util.h, shared with cknn_serve and
// cknn_loadgen. They print the error; on a false return, main prints the
// usage text and exits 2.
bool ParseOptions(int argc, char** argv, Options* opt) {
  opt->spec.network.target_edges = 10000;
  opt->spec.network.seed = 1;
  opt->spec.workload.num_objects = 100000;
  opt->spec.workload.num_queries = 5000;
  opt->spec.workload.k = 50;
  opt->spec.timestamps = 100;
  // Flags that shape the generated workload; meaningless in --replay mode,
  // where the trace file defines network, workload, and horizon.
  static const char* const kGeneratorFlags[] = {
      "--edges",         "--objects",        "--queries",
      "--k",             "--timestamps",     "--edge-agility",
      "--object-agility", "--query-agility", "--object-speed",
      "--query-speed",   "--uniform-queries", "--gaussian-objects",
      "--seed"};
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (opt->generator_flag == nullptr) {
      for (const char* name : kGeneratorFlags) {
        if (ParseFlag(argv[i], name, &v)) {
          opt->generator_flag = name;
          break;
        }
      }
    }
    if (ParseFlag(argv[i], "--algo", &v)) {
      if (!RequireValue("--algo", v)) return false;
      opt->algo_flag_used = true;
      if (std::strcmp(v, "ima") == 0) {
        opt->algo = Algorithm::kIma;
      } else if (std::strcmp(v, "gma") == 0) {
        opt->algo = Algorithm::kGma;
      } else if (std::strcmp(v, "ovh") == 0) {
        opt->algo = Algorithm::kOvh;
      } else {
        std::fprintf(stderr, "unknown algorithm: %s\n\n", v);
        return false;
      }
    } else if (ParseFlag(argv[i], "--compare", &v)) {
      if (!RejectValue("--compare", v)) return false;
      opt->compare = true;
    } else if (ParseFlag(argv[i], "--memory", &v)) {
      if (!RejectValue("--memory", v)) return false;
      opt->memory = true;
    } else if (ParseFlag(argv[i], "--conformance", &v)) {
      if (!RejectValue("--conformance", v)) return false;
      opt->conformance = true;
    } else if (ParseFlag(argv[i], "--record", &v)) {
      if (!RequireValue("--record", v)) return false;
      opt->record_path = v;
    } else if (ParseFlag(argv[i], "--replay", &v)) {
      if (!RequireValue("--replay", v)) return false;
      opt->replay_path = v;
    } else if (ParseFlag(argv[i], "--edges", &v)) {
      if (!ParseSize("--edges", v, &opt->spec.network.target_edges)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--objects", &v)) {
      if (!ParseSize("--objects", v, &opt->spec.workload.num_objects)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--queries", &v)) {
      if (!ParseSize("--queries", v, &opt->spec.workload.num_queries)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--k", &v)) {
      if (!ParsePositiveInt("--k", v, &opt->spec.workload.k)) return false;
    } else if (ParseFlag(argv[i], "--timestamps", &v)) {
      if (!ParsePositiveInt("--timestamps", v, &opt->spec.timestamps)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--edge-agility", &v)) {
      if (!ParseDouble("--edge-agility", v,
                       &opt->spec.workload.edge_agility)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--object-agility", &v)) {
      if (!ParseDouble("--object-agility", v,
                       &opt->spec.workload.object_agility)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--query-agility", &v)) {
      if (!ParseDouble("--query-agility", v,
                       &opt->spec.workload.query_agility)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--object-speed", &v)) {
      if (!ParseDouble("--object-speed", v,
                       &opt->spec.workload.object_speed)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--query-speed", &v)) {
      if (!ParseDouble("--query-speed", v,
                       &opt->spec.workload.query_speed)) {
        return false;
      }
    } else if (ParseFlag(argv[i], "--uniform-queries", &v)) {
      if (!RejectValue("--uniform-queries", v)) return false;
      opt->spec.workload.query_distribution = Distribution::kUniform;
    } else if (ParseFlag(argv[i], "--gaussian-objects", &v)) {
      if (!RejectValue("--gaussian-objects", v)) return false;
      opt->spec.workload.object_distribution = Distribution::kGaussian;
    } else if (ParseFlag(argv[i], "--shards", &v)) {
      if (!ParsePositiveInt("--shards", v, &opt->spec.shards)) return false;
    } else if (ParseFlag(argv[i], "--pipeline", &v)) {
      if (!ParsePositiveInt("--pipeline", v, &opt->spec.pipeline_depth)) {
        return false;
      }
      if (opt->spec.pipeline_depth > 2) {
        std::fprintf(stderr,
                     "--pipeline depth must be 1 or 2 (double buffering)\n\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--tiles", &v)) {
      if (!ParsePositiveInt("--tiles", v, &opt->spec.tiles)) return false;
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      if (!ParseCount("--seed", v, &opt->spec.workload.seed)) return false;
      opt->spec.network.seed = opt->spec.workload.seed ^ 0x9E37;
    } else {
      std::fprintf(stderr, "unknown option: %s\n\n", argv[i]);
      return false;
    }
  }
  if (!opt->record_path.empty() && !opt->replay_path.empty()) {
    std::fprintf(stderr, "--record and --replay cannot be combined\n\n");
    return false;
  }
  if (opt->compare && (opt->conformance || !opt->record_path.empty())) {
    std::fprintf(stderr,
                 "--compare cannot be combined with --record/--conformance\n\n");
    return false;
  }
  if (!opt->replay_path.empty() && opt->generator_flag != nullptr) {
    std::fprintf(stderr,
                 "%s has no effect with --replay "
                 "(the trace defines network, workload, and horizon)\n\n",
                 opt->generator_flag);
    return false;
  }
  if (opt->conformance && opt->algo_flag_used) {
    std::fprintf(stderr,
                 "--algo has no effect with --conformance "
                 "(all three algorithms run in lockstep)\n\n");
    return false;
  }
  if (opt->conformance && opt->memory) {
    std::fprintf(stderr,
                 "--memory has no effect with --conformance\n\n");
    return false;
  }
  opt->spec.measure_memory = opt->memory;
  return true;
}

void PrintRun(Algorithm algo, const RunMetrics& metrics, bool memory) {
  for (std::size_t ts = 0; ts < metrics.steps.size(); ++ts) {
    std::printf("ts %4zu  wall %.6fs  cpu %.6fs", ts,
                metrics.steps[ts].seconds, metrics.steps[ts].cpu_seconds);
    if (memory) {
      std::printf("  mem %zu KB", metrics.steps[ts].memory_bytes / 1024);
    }
    std::printf("\n");
  }
  std::printf(
      "\n%s: avg %.6f s/ts wall (%.6f cpu), max %.6f s/ts wall "
      "over %zu timestamps\n",
      AlgorithmName(algo), metrics.AvgSeconds(), metrics.AvgCpuSeconds(),
      metrics.MaxSeconds(), metrics.steps.size());
}

/// Runs `run(algo)` for OVH, IMA and GMA and prints the shared
/// comparison table (used by both the generated and the replayed
/// --compare modes).
template <typename RunFn>
int PrintComparisonTable(const std::string& title, bool memory, RunFn run) {
  SeriesTable table(title, "metric", {"OVH", "IMA", "GMA"}, "per-timestamp");
  std::vector<double> avg;
  std::vector<double> peak;
  std::vector<double> cpu;
  std::vector<double> mem;
  for (Algorithm algo :
       {Algorithm::kOvh, Algorithm::kIma, Algorithm::kGma}) {
    const Result<RunMetrics> metrics = run(algo);
    if (!metrics.ok()) {
      std::fprintf(stderr, "%s run failed: %s\n", AlgorithmName(algo),
                   metrics.status().ToString().c_str());
      return 2;
    }
    avg.push_back(metrics->AvgSeconds());
    peak.push_back(metrics->MaxSeconds());
    cpu.push_back(metrics->AvgCpuSeconds());
    mem.push_back(metrics->AvgMemoryKb());
  }
  table.AddRow("avg wall (s)", avg);
  table.AddRow("max wall (s)", peak);
  table.AddRow("avg cpu (s)", cpu);
  if (memory) table.AddRow("memory (KB)", mem);
  table.Print(std::cout);
  return 0;
}

int PrintConformance(const Result<ConformanceReport>& report) {
  if (!report.ok()) {
    std::fprintf(stderr, "conformance check failed to run: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", report->ToString().c_str());
  return report->ok ? 0 : 1;
}

/// Replay modes: the network and horizon come from the trace file.
int RunReplayModes(const Options& opt) {
  Result<Trace> trace = ReadTrace(opt.replay_path);
  if (!trace.ok()) {
    std::fprintf(stderr, "cannot read trace %s: %s\n",
                 opt.replay_path.c_str(), trace.status().ToString().c_str());
    return 2;
  }
  if (opt.conformance) {
    std::fprintf(stderr, "checking conformance on %s (%zu ticks)...\n",
                 opt.replay_path.c_str(), trace->batches.size());
    ConformanceOptions conf;
    conf.shards = opt.spec.shards;
    conf.pipeline_depth = opt.spec.pipeline_depth;
    conf.tiles = opt.spec.tiles;
    return PrintConformance(CheckTraceConformance(*trace, conf));
  }
  if (opt.compare) {
    return PrintComparisonTable(
        "Algorithm comparison (replay)", opt.memory, [&](Algorithm algo) {
          std::fprintf(stderr, "replaying %s...\n", AlgorithmName(algo));
          return RunTraceReplay(algo, *trace, opt.memory, opt.spec.shards,
                                opt.spec.pipeline_depth, opt.spec.tiles);
        });
  }
  std::fprintf(stderr, "replaying %s on %s (%zu edges, %zu ticks)...\n",
               AlgorithmName(opt.algo), opt.replay_path.c_str(),
               trace->network.NumEdges(), trace->batches.size());
  Result<RunMetrics> metrics =
      RunTraceReplay(opt.algo, *trace, opt.memory, opt.spec.shards,
                     opt.spec.pipeline_depth, opt.spec.tiles);
  if (!metrics.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 metrics.status().ToString().c_str());
    return 2;
  }
  PrintRun(opt.algo, *metrics, opt.memory);
  return 0;
}

/// Generates the workload from the flags and replays it through all three
/// algorithms in lockstep, optionally recording the stream to --record.
int RunGeneratedConformance(const Options& opt) {
  const RoadNetwork net = GenerateRoadNetwork(opt.spec.network);
  const std::vector<std::unique_ptr<MonitoringServer>> servers =
      BuildLockstepServers(net, ConformanceOptions{}.algorithms,
                           opt.spec.shards, opt.spec.pipeline_depth,
                           opt.spec.tiles);
  std::vector<MonitoringServer*> ptrs;
  ptrs.reserve(servers.size());
  for (const auto& server : servers) ptrs.push_back(server.get());
  Workload workload(&servers[0]->network(), &servers[0]->spatial_index(),
                    opt.spec.workload);
  std::unique_ptr<TraceWriter> writer;
  std::unique_ptr<RecordingWorkloadSource> recorder;
  WorkloadSource* source = &workload;
  if (!opt.record_path.empty()) {
    Result<TraceWriter> opened = TraceWriter::Open(
        opt.record_path, ExperimentTraceMeta(opt.spec), net);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot record trace %s: %s\n",
                   opt.record_path.c_str(),
                   opened.status().ToString().c_str());
      return 2;
    }
    writer = std::make_unique<TraceWriter>(std::move(opened).value());
    recorder =
        std::make_unique<RecordingWorkloadSource>(&workload, writer.get());
    source = recorder.get();
  }
  std::fprintf(stderr,
               "conformance: %zu edges, N=%zu, Q=%zu, k=%d, %d timestamps\n",
               net.NumEdges(), opt.spec.workload.num_objects,
               opt.spec.workload.num_queries, opt.spec.workload.k,
               opt.spec.timestamps);
  const Result<ConformanceReport> report = RunLockstep(
      ptrs, source, opt.spec.timestamps, ConformanceOptions{}.tolerance);
  if (writer != nullptr) {
    if (recorder != nullptr && !recorder->status().ok()) {
      std::fprintf(stderr, "trace recording failed: %s\n",
                   recorder->status().ToString().c_str());
      return 2;
    }
    const Status st = writer->Finish();
    if (!st.ok()) {
      std::fprintf(stderr, "trace recording failed: %s\n",
                   st.ToString().c_str());
      return 2;
    }
  }
  return PrintConformance(report);
}

int Run(const Options& opt) {
  if (!opt.replay_path.empty()) return RunReplayModes(opt);
  if (opt.conformance) return RunGeneratedConformance(opt);
  if (opt.compare) {
    return PrintComparisonTable(
        "Algorithm comparison", opt.memory,
        [&](Algorithm algo) -> Result<RunMetrics> {
          std::fprintf(stderr, "running %s...\n", AlgorithmName(algo));
          return RunExperiment(algo, opt.spec);
        });
  }
  std::fprintf(stderr, "running %s on %zu edges, N=%zu, Q=%zu, k=%d...\n",
               AlgorithmName(opt.algo), opt.spec.network.target_edges,
               opt.spec.workload.num_objects, opt.spec.workload.num_queries,
               opt.spec.workload.k);
  RunMetrics metrics;
  if (!opt.record_path.empty()) {
    Result<RunMetrics> recorded =
        RunRecordedExperiment(opt.algo, opt.spec, opt.record_path);
    if (!recorded.ok()) {
      std::fprintf(stderr, "recording failed: %s\n",
                   recorded.status().ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "trace recorded to %s\n", opt.record_path.c_str());
    metrics = std::move(recorded).value();
  } else {
    metrics = RunExperiment(opt.algo, opt.spec);
  }
  PrintRun(opt.algo, metrics, opt.memory);
  return 0;
}

}  // namespace
}  // namespace cknn

int main(int argc, char** argv) {
  cknn::Options options;
  if (!cknn::ParseOptions(argc, argv, &options)) {
    cknn::PrintUsage();
    return 2;
  }
  return cknn::Run(options);
}

// cknn_sim — command-line monitoring simulator.
//
// Runs a Table-2 style workload on a generated road network with a chosen
// algorithm and prints per-timestamp maintenance cost plus a summary, e.g.:
//
//   cknn_sim --algo=gma --edges=10000 --objects=100000 --queries=5000
//            --k=50 --timestamps=100 --edge-agility=0.04 --seed=7
//
// Use --compare to run OVH, IMA and GMA on the identical workload and
// print a comparison table.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "src/sim/experiment.h"

namespace cknn {
namespace {

struct Options {
  Algorithm algo = Algorithm::kGma;
  bool compare = false;
  bool memory = false;
  ExperimentSpec spec;
};

void PrintUsage() {
  std::printf(
      "usage: cknn_sim [options]\n"
      "  --algo=ima|gma|ovh    algorithm (default gma)\n"
      "  --compare             run all three algorithms and compare\n"
      "  --edges=N             network size (default 10000)\n"
      "  --objects=N           object cardinality (default 100000)\n"
      "  --queries=N           query cardinality (default 5000)\n"
      "  --k=N                 neighbors per query (default 50)\n"
      "  --timestamps=N        monitoring horizon (default 100)\n"
      "  --edge-agility=F      fraction of edges updated per ts (0.04)\n"
      "  --object-agility=F    fraction of objects moving per ts (0.10)\n"
      "  --query-agility=F     fraction of queries moving per ts (0.10)\n"
      "  --object-speed=F      avg edge lengths per ts (1.0)\n"
      "  --query-speed=F       avg edge lengths per ts (1.0)\n"
      "  --uniform-queries     place queries uniformly (default Gaussian)\n"
      "  --gaussian-objects    place objects Gaussian (default uniform)\n"
      "  --memory              report monitoring memory\n"
      "  --seed=N              master seed (default 42)\n");
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

bool ParseOptions(int argc, char** argv, Options* opt) {
  opt->spec.network.target_edges = 10000;
  opt->spec.network.seed = 1;
  opt->spec.workload.num_objects = 100000;
  opt->spec.workload.num_queries = 5000;
  opt->spec.workload.k = 50;
  opt->spec.timestamps = 100;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--algo", &v) && v != nullptr) {
      if (std::strcmp(v, "ima") == 0) {
        opt->algo = Algorithm::kIma;
      } else if (std::strcmp(v, "gma") == 0) {
        opt->algo = Algorithm::kGma;
      } else if (std::strcmp(v, "ovh") == 0) {
        opt->algo = Algorithm::kOvh;
      } else {
        std::fprintf(stderr, "unknown algorithm: %s\n", v);
        return false;
      }
    } else if (ParseFlag(argv[i], "--compare", &v)) {
      opt->compare = true;
    } else if (ParseFlag(argv[i], "--memory", &v)) {
      opt->memory = true;
    } else if (ParseFlag(argv[i], "--edges", &v) && v) {
      opt->spec.network.target_edges = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--objects", &v) && v) {
      opt->spec.workload.num_objects = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--queries", &v) && v) {
      opt->spec.workload.num_queries = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--k", &v) && v) {
      opt->spec.workload.k = std::atoi(v);
    } else if (ParseFlag(argv[i], "--timestamps", &v) && v) {
      opt->spec.timestamps = std::atoi(v);
    } else if (ParseFlag(argv[i], "--edge-agility", &v) && v) {
      opt->spec.workload.edge_agility = std::atof(v);
    } else if (ParseFlag(argv[i], "--object-agility", &v) && v) {
      opt->spec.workload.object_agility = std::atof(v);
    } else if (ParseFlag(argv[i], "--query-agility", &v) && v) {
      opt->spec.workload.query_agility = std::atof(v);
    } else if (ParseFlag(argv[i], "--object-speed", &v) && v) {
      opt->spec.workload.object_speed = std::atof(v);
    } else if (ParseFlag(argv[i], "--query-speed", &v) && v) {
      opt->spec.workload.query_speed = std::atof(v);
    } else if (ParseFlag(argv[i], "--uniform-queries", &v)) {
      opt->spec.workload.query_distribution = Distribution::kUniform;
    } else if (ParseFlag(argv[i], "--gaussian-objects", &v)) {
      opt->spec.workload.object_distribution = Distribution::kGaussian;
    } else if (ParseFlag(argv[i], "--seed", &v) && v) {
      opt->spec.workload.seed = std::strtoull(v, nullptr, 10);
      opt->spec.network.seed = opt->spec.workload.seed ^ 0x9E37;
    } else {
      std::fprintf(stderr, "unknown option: %s\n\n", argv[i]);
      PrintUsage();
      return false;
    }
  }
  opt->spec.measure_memory = opt->memory;
  return true;
}

int Run(const Options& opt) {
  if (opt.compare) {
    SeriesTable table("Algorithm comparison", "metric",
                      {"OVH", "IMA", "GMA"},
                      "per-timestamp");
    std::vector<double> avg;
    std::vector<double> peak;
    std::vector<double> mem;
    for (Algorithm algo :
         {Algorithm::kOvh, Algorithm::kIma, Algorithm::kGma}) {
      std::fprintf(stderr, "running %s...\n", AlgorithmName(algo));
      const RunMetrics metrics = RunExperiment(algo, opt.spec);
      avg.push_back(metrics.AvgSeconds());
      peak.push_back(metrics.MaxSeconds());
      mem.push_back(metrics.AvgMemoryKb());
    }
    table.AddRow("avg CPU (s)", avg);
    table.AddRow("max CPU (s)", peak);
    if (opt.memory) table.AddRow("memory (KB)", mem);
    table.Print(std::cout);
    return 0;
  }
  std::fprintf(stderr, "running %s on %zu edges, N=%zu, Q=%zu, k=%d...\n",
               AlgorithmName(opt.algo), opt.spec.network.target_edges,
               opt.spec.workload.num_objects, opt.spec.workload.num_queries,
               opt.spec.workload.k);
  const RunMetrics metrics = RunExperiment(opt.algo, opt.spec);
  for (std::size_t ts = 0; ts < metrics.steps.size(); ++ts) {
    std::printf("ts %4zu  cpu %.6fs", ts, metrics.steps[ts].seconds);
    if (opt.memory) {
      std::printf("  mem %zu KB", metrics.steps[ts].memory_bytes / 1024);
    }
    std::printf("\n");
  }
  std::printf("\n%s: avg %.6f s/ts, max %.6f s/ts over %zu timestamps\n",
              AlgorithmName(opt.algo), metrics.AvgSeconds(),
              metrics.MaxSeconds(), metrics.steps.size());
  return 0;
}

}  // namespace
}  // namespace cknn

int main(int argc, char** argv) {
  cknn::Options options;
  if (!cknn::ParseOptions(argc, argv, &options)) return 2;
  return cknn::Run(options);
}

#ifndef CKNN_TOOLS_FLAG_UTIL_H_
#define CKNN_TOOLS_FLAG_UTIL_H_

// Shared flag-parsing helpers of the CLI tools (cknn_sim, cknn_serve,
// cknn_loadgen), enforcing one rule set everywhere:
//
//  * flags are `--name=value` or bare `--name`; a longer flag sharing the
//    prefix does not match,
//  * a value flag given bare (`--algo`) is an error, never a fall-through,
//  * a boolean flag given a value (`--compare=yes`) is equally an error,
//  * numerics are strict: non-numeric, negative-where-unsigned, and
//    trailing-garbage values error out instead of becoming 0.
//
// On error the helpers print the message (ending in a blank line) to
// stderr and return false; the *caller* prints its usage text and exits 2,
// so every tool reports `error`, blank line, usage — in that order.

#include <cerrno>
#include <climits>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cknn::tools {

/// Matches `--name` (value left nullptr) or `--name=value`; other
/// arguments, including longer flags sharing the prefix, do not match.
inline bool ParseFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

/// A value flag given bare (`--algo` instead of `--algo=gma`) is an error.
inline bool RequireValue(const char* flag, const char* v) {
  if (v != nullptr && *v != '\0') return true;
  std::fprintf(stderr, "missing value for %s\n\n", flag);
  return false;
}

/// A boolean flag given a value (`--compare=yes`) is equally an error.
inline bool RejectValue(const char* flag, const char* v) {
  if (v == nullptr) return true;
  std::fprintf(stderr, "%s does not take a value\n\n", flag);
  return false;
}

inline bool BadNumber(const char* flag, const char* v) {
  std::fprintf(stderr, "invalid numeric value for %s: '%s'\n\n", flag, v);
  return false;
}

/// Strict unsigned parsing: `--k=fifty` or `--edges=-5` must error out,
/// not silently become 0 the way atoi/strtoull would.
inline bool ParseCount(const char* flag, const char* v, std::uint64_t* out) {
  if (!RequireValue(flag, v)) return false;
  if (*v == '-') return BadNumber(flag, v);
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0') return BadNumber(flag, v);
  *out = parsed;
  return true;
}

inline bool ParseSize(const char* flag, const char* v, std::size_t* out) {
  std::uint64_t parsed = 0;
  if (!ParseCount(flag, v, &parsed)) return false;
  *out = static_cast<std::size_t>(parsed);
  return true;
}

/// Strict `>= 1` int parsing: a zero or negative count would run an empty
/// scenario (or die deep in the engine) instead of erroring here.
inline bool ParsePositiveInt(const char* flag, const char* v, int* out) {
  if (!RequireValue(flag, v)) return false;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0' || parsed < 1 ||
      parsed > INT_MAX) {
    return BadNumber(flag, v);
  }
  *out = static_cast<int>(parsed);
  return true;
}

inline bool ParseDouble(const char* flag, const char* v, double* out) {
  if (!RequireValue(flag, v)) return false;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v, &end);
  if (errno != 0 || end == v || *end != '\0') return BadNumber(flag, v);
  *out = parsed;
  return true;
}

}  // namespace cknn::tools

#endif  // CKNN_TOOLS_FLAG_UTIL_H_
